//! Branchless block kernels for predicate evaluation and aggregation.
//!
//! Everything in this module operates on one *block* of at most
//! [`BLOCK_ROWS`] contiguous rows of a single column, in
//! one of two selection representations:
//!
//! * a **selection vector** — `u32` in-block row offsets of the matching
//!   rows, materialized with unconditional stores and a cursor advanced by
//!   the 0/1 compare result (no data-dependent branch in the loop body);
//! * a **selection bitmap** — one bit per row, packed into `u64` words, where
//!   the inner loop builds 8-lane mask groups (`u64x8`-style manual
//!   unrolling) that the compiler turns into SIMD compares.
//!
//! The refine kernels narrow an existing selection by another predicate
//! (`retain` for vectors, `AND` for bitmaps), and the aggregate kernels
//! reduce a selection against the aggregation input column. Bitmap
//! aggregation is mask-native: `COUNT` is a popcount, `SUM`/`MIN`/`MAX` are
//! masked folds with a whole-word fast path for fully set words.
//!
//! All kernels are deliberately total functions of their inputs — given the
//! same block and predicates they produce the same selection regardless of
//! representation, which is what makes the executor's kernel tiers
//! bit-identical (see the [`exec`](super) module docs).

use super::BLOCK_ROWS;
use crate::dataset::Value;
use crate::encode::PackClass;
use crate::query::Predicate;

/// Bits per bitmap word.
pub(crate) const WORD_BITS: usize = 64;
/// Bitmap words per block.
pub(crate) const BLOCK_WORDS: usize = BLOCK_ROWS / WORD_BITS;
/// Manual unroll width of the mask kernels.
const LANES: usize = 8;

/// Reusable per-thread scratch space for the block kernels: a full-block
/// selection vector and a full-block selection bitmap. Executors allocate one
/// per call (or per worker thread) and reuse it across every block they scan.
#[derive(Debug, Clone)]
pub struct BlockScratch {
    /// Selection-vector buffer; always `BLOCK_ROWS` long, kernels return the
    /// live prefix length.
    pub(crate) sel: Vec<u32>,
    /// Selection-bitmap buffer; always `BLOCK_WORDS` words.
    pub(crate) words: Vec<u64>,
}

impl BlockScratch {
    /// Allocates scratch space for one scanning thread.
    pub fn new() -> Self {
        Self {
            sel: vec![0; BLOCK_ROWS],
            words: vec![0; BLOCK_WORDS],
        }
    }
}

impl Default for BlockScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Match mask of 8 consecutive values as the low 8 bits of a `u64`.
#[inline(always)]
fn lane_mask8(v: &[Value], p: Predicate) -> u64 {
    debug_assert_eq!(v.len(), LANES);
    (p.matches(v[0]) as u64)
        | (p.matches(v[1]) as u64) << 1
        | (p.matches(v[2]) as u64) << 2
        | (p.matches(v[3]) as u64) << 3
        | (p.matches(v[4]) as u64) << 4
        | (p.matches(v[5]) as u64) << 5
        | (p.matches(v[6]) as u64) << 6
        | (p.matches(v[7]) as u64) << 7
}

/// Match mask of up to 64 values as one bitmap word (bit `i` = value `i`
/// matches). Built from 8-lane groups; the partial tail is handled scalar.
#[inline(always)]
fn word_mask(chunk: &[Value], p: Predicate) -> u64 {
    debug_assert!(chunk.len() <= WORD_BITS);
    let mut word = 0u64;
    let mut shift = 0u32;
    let mut lanes = chunk.chunks_exact(LANES);
    for group in &mut lanes {
        word |= lane_mask8(group, p) << shift;
        shift += LANES as u32;
    }
    for (i, &v) in lanes.remainder().iter().enumerate() {
        word |= (p.matches(v) as u64) << (shift + i as u32);
    }
    word
}

/// Evaluates the first predicate of a block into a selection bitmap.
/// Returns the OR of all words, so callers can skip further refinement and
/// aggregation when the selection is already empty.
pub(crate) fn mask_first(block: &[Value], p: Predicate, words: &mut [u64]) -> u64 {
    let mut any = 0u64;
    for (w, chunk) in block.chunks(WORD_BITS).enumerate() {
        words[w] = word_mask(chunk, p);
        any |= words[w];
    }
    any
}

/// Refines an existing selection bitmap by another predicate (`AND`).
/// Returns the OR of all words after refinement (see [`mask_first`]).
pub(crate) fn mask_refine(block: &[Value], p: Predicate, words: &mut [u64]) -> u64 {
    let mut any = 0u64;
    for (w, chunk) in block.chunks(WORD_BITS).enumerate() {
        words[w] &= word_mask(chunk, p);
        any |= words[w];
    }
    any
}

/// Evaluates the first predicate of a block into a selection vector via
/// branchless cursor stores. Returns the number of selected rows; `sel` must
/// be at least as long as the block.
pub(crate) fn select_first(block: &[Value], p: Predicate, sel: &mut [u32]) -> usize {
    debug_assert!(sel.len() >= block.len());
    let mut n = 0usize;
    let mut base = 0usize;
    let mut lanes = block.chunks_exact(LANES);
    for group in &mut lanes {
        // 8-wide unrolled: the store is unconditional, only the cursor moves.
        for (j, &v) in group.iter().enumerate() {
            sel[n] = (base + j) as u32;
            n += p.matches(v) as usize;
        }
        base += LANES;
    }
    for (j, &v) in lanes.remainder().iter().enumerate() {
        sel[n] = (base + j) as u32;
        n += p.matches(v) as usize;
    }
    n
}

/// Refines the first `n` entries of a selection vector by another predicate,
/// compacting in place with branchless cursor stores. Returns the new length.
pub(crate) fn select_refine(block: &[Value], p: Predicate, sel: &mut [u32], n: usize) -> usize {
    let mut out = 0usize;
    for k in 0..n {
        let i = sel[k];
        sel[out] = i;
        out += p.matches(block[i as usize]) as usize;
    }
    out
}

/// Number of selected rows in a bitmap (popcount).
pub(crate) fn mask_count(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Masked fold for `SUM`/`AVG`: `(selected rows, sum of their values)`.
/// Fully set words take a straight-line whole-word reduction.
pub(crate) fn mask_sum(vals: &[Value], words: &[u64]) -> (u64, u128) {
    let mut n = 0u64;
    let mut sum = 0u128;
    for (w, &word) in words.iter().enumerate() {
        if word == 0 {
            continue;
        }
        let base = w * WORD_BITS;
        if word == u64::MAX {
            sum += vals[base..base + WORD_BITS]
                .iter()
                .map(|&v| v as u128)
                .sum::<u128>();
            n += WORD_BITS as u64;
        } else {
            let mut m = word;
            while m != 0 {
                sum += vals[base + m.trailing_zeros() as usize] as u128;
                m &= m - 1;
            }
            n += word.count_ones() as u64;
        }
    }
    (n, sum)
}

/// Masked fold for `MIN`: `(selected rows, minimum of their values)`.
pub(crate) fn mask_min(vals: &[Value], words: &[u64]) -> (u64, Option<Value>) {
    mask_extreme(vals, words, Value::MAX, Value::min)
}

/// Masked fold for `MAX`: `(selected rows, maximum of their values)`.
pub(crate) fn mask_max(vals: &[Value], words: &[u64]) -> (u64, Option<Value>) {
    mask_extreme(vals, words, Value::MIN, Value::max)
}

#[inline(always)]
fn mask_extreme(
    vals: &[Value],
    words: &[u64],
    identity: Value,
    fold: fn(Value, Value) -> Value,
) -> (u64, Option<Value>) {
    let mut n = 0u64;
    let mut best = identity;
    for (w, &word) in words.iter().enumerate() {
        if word == 0 {
            continue;
        }
        let base = w * WORD_BITS;
        if word == u64::MAX {
            best = vals[base..base + WORD_BITS]
                .iter()
                .fold(best, |acc, &v| fold(acc, v));
            n += WORD_BITS as u64;
        } else {
            let mut m = word;
            while m != 0 {
                best = fold(best, vals[base + m.trailing_zeros() as usize]);
                m &= m - 1;
            }
            n += word.count_ones() as u64;
        }
    }
    (n, (n > 0).then_some(best))
}

// ---------------------------------------------------------------------------
// Packed (SWAR) kernels: predicate evaluation directly on bit-packed blocks.
//
// Packed fields sit in `width + 1`-bit slots whose top (delimiter) bit is 0
// in storage — see `encode`. With `H` = the word's delimiter bits and `L` =
// ones in each slot's lowest bit, `((x | H) - c*L) & H` sets field k's
// delimiter bit iff `field_k >= c`: the borrow of the per-slot subtraction
// cannot cross slots because every minuend slot is at least `2^width > c`.
// A range test is `ge(lo) & !ge(hi + 1)`; callers guarantee `hi + 1` still
// fits the field width (`hi = None` stands for "every code passes"). One
// word evaluates 8/4/2 rows in a handful of ALU ops — the compute-reduction
// that lets encoded scans beat plain ones even when both are cache-resident.
// ---------------------------------------------------------------------------

/// Scattered match mask of one packed word: delimiter bit of field `k` is
/// set iff `lo <= field_k` and (`hi` absent or `field_k <= hi`).
#[inline(always)]
fn swar_match_word(x: u64, class: PackClass, lo: u64, hi: Option<u64>) -> u64 {
    let h = class.delim_mask();
    let l = class.low_ones();
    let ge_lo = ((x | h) - lo.wrapping_mul(l)) & h;
    match hi {
        None => ge_lo,
        Some(hi) => ge_lo & !((x | h) - (hi + 1).wrapping_mul(l)),
    }
}

/// Delimiter bits of fields `k0..k1` of one word (for partial first/last
/// words of an unaligned scan window).
#[inline(always)]
fn delim_range_mask(class: PackClass, k0: usize, k1: usize) -> u64 {
    let slot = class.slot() as usize;
    let below = if k1 == class.per_word() {
        u64::MAX
    } else {
        !(u64::MAX << (k1 * slot))
    };
    class.delim_mask() & (u64::MAX << (k0 * slot)) & below
}

/// Compacts a scattered delimiter-bit mask into dense low bits (bit `k` =
/// field `k`), via carry-free multiply gathers.
#[inline(always)]
fn densify(scattered: u64, class: PackClass) -> u64 {
    let m = scattered >> class.width();
    match class {
        // Bits at 8k gather to 56+k; all cross terms land at distinct
        // positions below the window, so no carries corrupt it.
        PackClass::W7 => m.wrapping_mul(0x0102_0408_1020_4080) >> 56,
        // Bits at 16k gather to 60+k.
        PackClass::W15 => m.wrapping_mul((1 << 60) | (1 << 45) | (1 << 30) | (1 << 15)) >> 60,
        PackClass::W31 => (m | (m >> 31)) & 0b11,
    }
}

/// Inverse of [`densify`]: expands the low `per_word` dense bits back to
/// scattered delimiter-bit positions, via carry-free multiply spreads (the
/// copies of each spread land in disjoint bit windows, so no carries).
#[inline(always)]
fn undensify(dense: u64, class: PackClass) -> u64 {
    let spread = match class {
        PackClass::W7 => {
            // Bit k -> position 8k+7. Two nibble spreads: copy k shifts by
            // 7k+7 (low nibble) / 7k+11 (high), each copy spanning 4 bits
            // in its own disjoint window.
            let m0 = (1u64 << 7) | (1 << 14) | (1 << 21) | (1 << 28);
            let m1 = (1u64 << 39) | (1 << 46) | (1 << 53) | (1 << 60);
            (dense & 0xF).wrapping_mul(m0) | (dense >> 4).wrapping_mul(m1)
        }
        // Bit k -> position 16k+15; copies span 15+k..18+k etc., disjoint.
        PackClass::W15 => dense.wrapping_mul((1 << 15) | (1 << 30) | (1 << 45) | (1 << 60)),
        PackClass::W31 => ((dense & 0b01) << 31) | ((dense & 0b10) << 62),
    };
    spread & class.delim_mask()
}

/// Lane-wise field-sum accumulator: adds delimiter-clear masked words with
/// one cheap pair-fold per word instead of a full horizontal sum, keeping
/// lanes far from overflow for scan windows up to one block (`BLOCK_ROWS`
/// fields): W7 pair-folds 8x7-bit to 16-bit lanes (<= 128 adds of <= 254),
/// W15 pair-folds 4x15-bit to 32-bit lanes (<= 256 adds of <= 65534), W31
/// folds both 32-bit halves into a u64 on every add (<= 512 adds of
/// < 2^32).
struct FieldSum {
    class: PackClass,
    acc: u64,
}

impl FieldSum {
    #[inline(always)]
    fn new(class: PackClass) -> Self {
        Self { class, acc: 0 }
    }

    #[inline(always)]
    fn add(&mut self, masked: u64) {
        self.acc += match self.class {
            PackClass::W7 => {
                (masked & 0x00FF_00FF_00FF_00FF) + ((masked >> 8) & 0x00FF_00FF_00FF_00FF)
            }
            PackClass::W15 => {
                (masked & 0x0000_FFFF_0000_FFFF) + ((masked >> 16) & 0x0000_FFFF_0000_FFFF)
            }
            PackClass::W31 => (masked & 0xFFFF_FFFF) + (masked >> 32),
        };
    }

    #[inline(always)]
    fn finish(self) -> u128 {
        let a = self.acc;
        (match self.class {
            PackClass::W7 => {
                let s = (a & 0x0000_FFFF_0000_FFFF) + ((a >> 16) & 0x0000_FFFF_0000_FFFF);
                (s & 0xFFFF_FFFF) + (s >> 32)
            }
            PackClass::W15 => (a & 0xFFFF_FFFF) + (a >> 32),
            PackClass::W31 => a,
        }) as u128
    }
}

/// Masked SUM over a FOR-packed aggregation column: walks the dense
/// selection bitmap (bit `i` = field `offset + i`), expands each group of
/// `per_word` bits back to a scattered field mask, and lane-sums the
/// surviving payloads — no per-row decode. Requires `offset` aligned to the
/// word's field count so bitmap groups coincide with packed words. Returns
/// `(matching rows, sum of matching codes)`; the caller adds
/// `rows * reference`.
pub(crate) fn mask_sum_packed(
    words: &[u64],
    agg_packed: &[u64],
    class: PackClass,
    offset: usize,
) -> (u64, u128) {
    let f = class.per_word();
    debug_assert_eq!(
        offset & (f - 1),
        0,
        "bitmap groups must align to packed words"
    );
    let base = offset >> class.log_per_word();
    let mut count = 0u64;
    let mut acc = 0u64;
    // The class match sits outside the loops so each arm is monomorphic
    // (see `sum_interior_loop!`); lane capacities as in [`FieldSum`].
    macro_rules! walk {
        ($undense:expr, $wbits:expr, $vm:expr, $m0:expr, $sh:expr) => {
            for (bw, &bits) in words.iter().enumerate() {
                if bits == 0 {
                    continue;
                }
                count += bits.count_ones() as u64;
                let mut w = base + bw * (WORD_BITS / f);
                let mut b = bits;
                for _ in 0..(WORD_BITS / f) {
                    let dense = b & ((1u64 << f) - 1);
                    b >>= f;
                    if dense != 0 {
                        let scattered = $undense(dense);
                        let v = agg_packed[w] & (scattered >> $wbits).wrapping_mul($vm);
                        acc += (v & $m0) + ((v >> $sh) & $m0);
                    }
                    w += 1;
                }
            }
        };
    }
    let sum: u128 = match class {
        PackClass::W7 => {
            walk!(
                |d: u64| undensify(d, PackClass::W7),
                7,
                class.value_mask(),
                0x00FF_00FF_00FF_00FFu64,
                8
            );
            let s = (acc & 0x0000_FFFF_0000_FFFF) + ((acc >> 16) & 0x0000_FFFF_0000_FFFF);
            ((s & 0xFFFF_FFFF) + (s >> 32)) as u128
        }
        PackClass::W15 => {
            walk!(
                |d: u64| undensify(d, PackClass::W15),
                15,
                class.value_mask(),
                0x0000_FFFF_0000_FFFFu64,
                16
            );
            ((acc & 0xFFFF_FFFF) + (acc >> 32)) as u128
        }
        PackClass::W31 => {
            walk!(
                |d: u64| undensify(d, PackClass::W31),
                31,
                class.value_mask(),
                0xFFFF_FFFFu64,
                32
            );
            acc as u128
        }
    };
    (count, sum)
}

/// How [`packed_mask`] combines into the selection bitmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MaskMode {
    /// First predicate: overwrite the bitmap.
    Set,
    /// Later predicate: AND into the existing bitmap.
    And,
}

/// Evaluates a code-range test over packed fields `offset .. offset + n`
/// into the dense selection bitmap `out` (bit `i` = field `offset + i`),
/// either setting or ANDing. Returns the OR of the touched words.
#[allow(clippy::too_many_arguments)]
pub(crate) fn packed_mask(
    packed: &[u64],
    class: PackClass,
    offset: usize,
    n: usize,
    lo: u64,
    hi: Option<u64>,
    mode: MaskMode,
    out: &mut [u64],
) -> u64 {
    debug_assert!(n > 0);
    let f = class.per_word();
    let slot = class.slot();
    let first = offset >> class.log_per_word();
    let last = (offset + n - 1) >> class.log_per_word();
    let k0 = offset & (f - 1);
    let k1 = ((offset + n - 1) & (f - 1)) + 1;
    if k0 == 0 {
        // Word-aligned windows (every grid-aligned chunk): each output word
        // is composed from a fixed group of packed words with no carry
        // state between iterations.
        return packed_mask_aligned(packed, class, offset, n, lo, hi, mode, out);
    }
    let mut sink = DenseSink {
        any: 0,
        cur: 0,
        cur_w: 0,
        filled: 0,
    };
    if first == last {
        let scattered =
            swar_match_word(packed[first], class, lo, hi) & delim_range_mask(class, k0, k1);
        sink.push(
            mode,
            out,
            densify(scattered >> (k0 as u32 * slot), class),
            k1 - k0,
        );
    } else {
        let scattered =
            swar_match_word(packed[first], class, lo, hi) & delim_range_mask(class, k0, f);
        sink.push(
            mode,
            out,
            densify(scattered >> (k0 as u32 * slot), class),
            f - k0,
        );
        // Interior words are whole: no edge masks, no per-word branches.
        for &x in &packed[first + 1..last] {
            sink.push(
                mode,
                out,
                densify(swar_match_word(x, class, lo, hi), class),
                f,
            );
        }
        let scattered =
            swar_match_word(packed[last], class, lo, hi) & delim_range_mask(class, 0, k1);
        sink.push(mode, out, densify(scattered, class), k1);
    }
    sink.flush(mode, out)
}

/// [`packed_mask`] for windows starting on a packed-word boundary: output
/// word `ow` gathers exactly `64 / per_word` packed words, so the inner loop
/// carries no spill state. The class match sits outside the loops so each
/// arm is a monomorphic, unrollable body.
#[allow(clippy::too_many_arguments)]
fn packed_mask_aligned(
    packed: &[u64],
    class: PackClass,
    offset: usize,
    n: usize,
    lo: u64,
    hi: Option<u64>,
    mode: MaskMode,
    out: &mut [u64],
) -> u64 {
    let mut any = 0u64;
    let mut w = offset >> class.log_per_word();
    macro_rules! run {
        ($f:expr, $cl:expr) => {{
            let g = WORD_BITS / $f;
            for ow in 0..n / WORD_BITS {
                let mut cur = 0u64;
                for j in 0..g {
                    cur |= densify(swar_match_word(packed[w + j], $cl, lo, hi), $cl) << (j * $f);
                }
                w += g;
                any |= apply_mask_word(mode, out, ow, cur);
            }
            let rem = n % WORD_BITS;
            if rem > 0 {
                let mut cur = 0u64;
                let mut filled = 0usize;
                while filled < rem {
                    let take = (rem - filled).min($f);
                    let m =
                        swar_match_word(packed[w], $cl, lo, hi) & delim_range_mask($cl, 0, take);
                    cur |= densify(m, $cl) << filled;
                    filled += take;
                    w += 1;
                }
                any |= apply_mask_word(mode, out, n / WORD_BITS, cur);
            }
        }};
    }
    match class {
        PackClass::W7 => run!(8, PackClass::W7),
        PackClass::W15 => run!(4, PackClass::W15),
        PackClass::W31 => run!(2, PackClass::W31),
    }
    any
}

/// Accumulates dense per-word match bits (`nb` low bits at a time) into the
/// selection bitmap, spilling each completed 64-bit output word.
struct DenseSink {
    any: u64,
    cur: u64,
    cur_w: usize,
    filled: usize,
}

impl DenseSink {
    #[inline(always)]
    fn push(&mut self, mode: MaskMode, out: &mut [u64], dense: u64, nb: usize) {
        self.cur |= dense << self.filled;
        if self.filled + nb >= 64 {
            self.any |= apply_mask_word(mode, out, self.cur_w, self.cur);
            // nb <= 8, so filled >= 56 here and the shift stays in range;
            // when the word filled exactly, the remainder shifts to zero.
            self.cur = dense >> (64 - self.filled).min(63);
            if 64 - self.filled == nb {
                self.cur = 0;
            }
            self.filled = self.filled + nb - 64;
            self.cur_w += 1;
        } else {
            self.filled += nb;
        }
    }

    #[inline(always)]
    fn flush(self, mode: MaskMode, out: &mut [u64]) -> u64 {
        if self.filled > 0 {
            self.any | apply_mask_word(mode, out, self.cur_w, self.cur)
        } else {
            self.any
        }
    }
}

#[inline(always)]
fn apply_mask_word(mode: MaskMode, out: &mut [u64], w: usize, bits: u64) -> u64 {
    match mode {
        MaskMode::Set => {
            out[w] = bits;
            bits
        }
        MaskMode::And => {
            out[w] &= bits;
            out[w]
        }
    }
}

/// COUNT fast path: number of packed fields in `offset .. offset + n`
/// passing the code-range test, with no bitmap materialization — popcounts
/// of the scattered masks directly.
pub(crate) fn packed_count(
    packed: &[u64],
    class: PackClass,
    offset: usize,
    n: usize,
    lo: u64,
    hi: Option<u64>,
) -> usize {
    debug_assert!(n > 0);
    let f = class.per_word();
    let first = offset >> class.log_per_word();
    let last = (offset + n - 1) >> class.log_per_word();
    let k0 = offset & (f - 1);
    let k1 = ((offset + n - 1) & (f - 1)) + 1;
    if first == last {
        let m = swar_match_word(packed[first], class, lo, hi) & delim_range_mask(class, k0, k1);
        return m.count_ones() as usize;
    }
    let mut count = (swar_match_word(packed[first], class, lo, hi) & delim_range_mask(class, k0, f))
        .count_ones() as usize;
    // Interior words are whole: pure SWAR + popcount, no edge masks.
    for &x in &packed[first + 1..last] {
        count += swar_match_word(x, class, lo, hi).count_ones() as usize;
    }
    count += (swar_match_word(packed[last], class, lo, hi) & delim_range_mask(class, 0, k1))
        .count_ones() as usize;
    count
}

/// Class-specialized whole-word masked-sum loop: the `match` sits outside
/// the loop so each arm is a monomorphic, vectorizable body (a class match
/// or `Option` test inside the hot loop defeats LLVM's vectorizer). Lanes
/// cannot overflow within one block window (see [`FieldSum`]).
macro_rules! sum_interior_loop {
    ($pred:expr, $agg:expr, $h:expr, $lo_m:expr, $hi_m:expr, $wbits:expr, $vm:expr,
     $m0:expr, $sh:expr, $count:ident, $acc:ident) => {
        match $hi_m {
            None => {
                for (&x, &a) in $pred.iter().zip($agg) {
                    let m = ((x | $h).wrapping_sub($lo_m)) & $h;
                    $count += m.count_ones() as u64;
                    let v = a & (m >> $wbits).wrapping_mul($vm);
                    $acc += (v & $m0) + ((v >> $sh) & $m0);
                }
            }
            Some(hi_m) => {
                for (&x, &a) in $pred.iter().zip($agg) {
                    let xh = x | $h;
                    let m = (xh.wrapping_sub($lo_m)) & $h & !(xh.wrapping_sub(hi_m));
                    $count += m.count_ones() as u64;
                    let v = a & (m >> $wbits).wrapping_mul($vm);
                    $acc += (v & $m0) + ((v >> $sh) & $m0);
                }
            }
        }
    };
}

/// Whole-word masked sum over parallel pred/agg slices (no edge masks);
/// returns `(matching rows, sum of matching codes)`.
#[inline(always)]
fn sum_interior(
    pred: &[u64],
    agg: &[u64],
    class: PackClass,
    lo: u64,
    hi: Option<u64>,
) -> (u64, u128) {
    let h = class.delim_mask();
    let l = class.low_ones();
    let lo_m = lo.wrapping_mul(l);
    let hi_m = hi.map(|hi| (hi + 1).wrapping_mul(l));
    let wbits = class.width();
    let vm = class.value_mask();
    let mut count = 0u64;
    let mut acc = 0u64;
    match class {
        PackClass::W7 => {
            sum_interior_loop!(
                pred,
                agg,
                h,
                lo_m,
                hi_m,
                wbits,
                vm,
                0x00FF_00FF_00FF_00FFu64,
                8,
                count,
                acc
            );
            let s = (acc & 0x0000_FFFF_0000_FFFF) + ((acc >> 16) & 0x0000_FFFF_0000_FFFF);
            (count, (((s & 0xFFFF_FFFF) + (s >> 32)) as u128))
        }
        PackClass::W15 => {
            sum_interior_loop!(
                pred,
                agg,
                h,
                lo_m,
                hi_m,
                wbits,
                vm,
                0x0000_FFFF_0000_FFFFu64,
                16,
                count,
                acc
            );
            (count, ((acc & 0xFFFF_FFFF) + (acc >> 32)) as u128)
        }
        PackClass::W31 => {
            sum_interior_loop!(
                pred,
                agg,
                h,
                lo_m,
                hi_m,
                wbits,
                vm,
                0xFFFF_FFFFu64,
                32,
                count,
                acc
            );
            (count, acc as u128)
        }
    }
}

/// SUM fast path for a predicate column and a FOR aggregation column packed
/// in the **same class**: their field layouts coincide word-for-word, so the
/// predicate's scattered match mask expands to a field mask applied straight
/// to the aggregation words — no bitmap, no decode, no per-row loop.
/// Returns `(matching rows, sum of matching aggregation codes)`; the caller
/// adds `rows * reference` to undo the frame of reference.
pub(crate) fn packed_sum_same_layout(
    pred_packed: &[u64],
    agg_packed: &[u64],
    class: PackClass,
    offset: usize,
    n: usize,
    lo: u64,
    hi: Option<u64>,
) -> (u64, u128) {
    debug_assert!(n > 0);
    let f = class.per_word();
    let first = offset >> class.log_per_word();
    let last = (offset + n - 1) >> class.log_per_word();
    let k0 = offset & (f - 1);
    let k1 = ((offset + n - 1) & (f - 1)) + 1;
    let mut count = 0u64;
    let mut fs = FieldSum::new(class);
    let mut fold = |fs: &mut FieldSum, scattered: u64, agg_word: u64| {
        count += scattered.count_ones() as u64;
        // Broadcast each matched delimiter bit over its field's payload.
        let field_mask = (scattered >> class.width()).wrapping_mul(class.value_mask());
        fs.add(agg_word & field_mask);
    };
    if first == last {
        let m =
            swar_match_word(pred_packed[first], class, lo, hi) & delim_range_mask(class, k0, k1);
        fold(&mut fs, m, agg_packed[first]);
        return (count, fs.finish());
    }
    let m = swar_match_word(pred_packed[first], class, lo, hi) & delim_range_mask(class, k0, f);
    fold(&mut fs, m, agg_packed[first]);
    let m = swar_match_word(pred_packed[last], class, lo, hi) & delim_range_mask(class, 0, k1);
    fold(&mut fs, m, agg_packed[last]);
    // Interior words are whole: one monomorphic SWAR loop, no edge masks.
    let (c, sum) = sum_interior(
        &pred_packed[first + 1..last],
        &agg_packed[first + 1..last],
        class,
        lo,
        hi,
    );
    (count + c, fs.finish() + sum)
}

/// Masked fold for `SUM` with an arbitrary value fetcher (packed aggregation
/// columns): like [`mask_sum`], but rows are materialized through `fetch`.
pub(crate) fn mask_sum_fetch(words: &[u64], fetch: impl Fn(usize) -> Value) -> (u64, u128) {
    let mut n = 0u64;
    let mut sum = 0u128;
    for (w, &word) in words.iter().enumerate() {
        if word == 0 {
            continue;
        }
        let base = w * WORD_BITS;
        let mut m = word;
        while m != 0 {
            sum += fetch(base + m.trailing_zeros() as usize) as u128;
            m &= m - 1;
        }
        n += word.count_ones() as u64;
    }
    (n, sum)
}

/// Masked `MIN`/`MAX` fold with an arbitrary value fetcher.
pub(crate) fn mask_extreme_fetch(
    words: &[u64],
    identity: Value,
    fold: fn(Value, Value) -> Value,
    fetch: impl Fn(usize) -> Value,
) -> (u64, Option<Value>) {
    let mut n = 0u64;
    let mut best = identity;
    for (w, &word) in words.iter().enumerate() {
        if word == 0 {
            continue;
        }
        let base = w * WORD_BITS;
        let mut m = word;
        while m != 0 {
            best = fold(best, fetch(base + m.trailing_zeros() as usize));
            m &= m - 1;
        }
        n += word.count_ones() as u64;
    }
    (n, (n > 0).then_some(best))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(lo: Value, hi: Value) -> Predicate {
        Predicate::range(0, lo, hi).unwrap()
    }

    /// Reference selection: the plainly branchy filter.
    fn oracle(block: &[Value], p: Predicate) -> Vec<u32> {
        block
            .iter()
            .enumerate()
            .filter(|&(_, &v)| p.matches(v))
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn blocks() -> Vec<Vec<Value>> {
        // Full block, one word, partial word, partial lanes, empty.
        vec![
            (0..BLOCK_ROWS as u64).map(|v| v * 7 % 1000).collect(),
            (0..64u64).collect(),
            (0..100u64).map(|v| v * 3 % 37).collect(),
            (0..5u64).collect(),
            Vec::new(),
        ]
    }

    #[test]
    fn mask_and_select_agree_with_oracle_on_odd_block_sizes() {
        for block in blocks() {
            for p in [
                pred(0, 10),
                pred(3, 500),
                pred(2000, 3000),
                pred(0, u64::MAX),
            ] {
                let expected = oracle(&block, p);

                let mut sel = vec![0u32; BLOCK_ROWS];
                let n = select_first(&block, p, &mut sel);
                assert_eq!(&sel[..n], &expected[..], "select_first {p:?}");

                let mut words = [0u64; BLOCK_WORDS];
                mask_first(&block, p, &mut words[..block.len().div_ceil(WORD_BITS)]);
                let from_bits: Vec<u32> = (0..block.len() as u32)
                    .filter(|&i| words[i as usize / WORD_BITS] >> (i as usize % WORD_BITS) & 1 == 1)
                    .collect();
                assert_eq!(from_bits, expected, "mask_first {p:?}");
            }
        }
    }

    #[test]
    fn refine_matches_sequential_filters() {
        let block: Vec<Value> = (0..777u64).map(|v| v * 13 % 101).collect();
        let p1 = pred(10, 80);
        let p2 = pred(20, 60);
        let expected: Vec<u32> = block
            .iter()
            .enumerate()
            .filter(|&(_, &v)| p1.matches(v) && p2.matches(v))
            .map(|(i, _)| i as u32)
            .collect();

        let mut sel = vec![0u32; BLOCK_ROWS];
        let n = select_first(&block, p1, &mut sel);
        let n = select_refine(&block, p2, &mut sel, n);
        assert_eq!(&sel[..n], &expected[..]);

        let nw = block.len().div_ceil(WORD_BITS);
        let mut words = vec![0u64; nw];
        mask_first(&block, p1, &mut words);
        mask_refine(&block, p2, &mut words);
        assert_eq!(mask_count(&words), expected.len());
    }

    #[test]
    fn mask_aggregates_match_selected_folds() {
        let vals: Vec<Value> = (0..300u64).map(|v| v * 17 % 999).collect();
        for p in [pred(0, 0), pred(100, 700), pred(0, u64::MAX)] {
            let nw = vals.len().div_ceil(WORD_BITS);
            let mut words = vec![0u64; nw];
            mask_first(&vals, p, &mut words);
            let selected: Vec<Value> = vals.iter().copied().filter(|&v| p.matches(v)).collect();

            assert_eq!(mask_count(&words), selected.len());
            let (n, sum) = mask_sum(&vals, &words);
            assert_eq!(n as usize, selected.len());
            assert_eq!(sum, selected.iter().map(|&v| v as u128).sum::<u128>());
            let (_, lo) = mask_min(&vals, &words);
            assert_eq!(lo, selected.iter().copied().min());
            let (_, hi) = mask_max(&vals, &words);
            assert_eq!(hi, selected.iter().copied().max());
        }
    }

    #[test]
    fn dense_word_fast_path_is_exercised() {
        // 128 values all matching: both words fully set.
        let vals: Vec<Value> = (0..128u64).collect();
        let p = pred(0, u64::MAX);
        let mut words = vec![0u64; 2];
        mask_first(&vals, p, &mut words);
        assert_eq!(words, vec![u64::MAX, u64::MAX]);
        let (n, sum) = mask_sum(&vals, &words);
        assert_eq!((n, sum), (128, (0..128u128).sum()));
        assert_eq!(mask_min(&vals, &words), (128, Some(0)));
        assert_eq!(mask_max(&vals, &words), (128, Some(127)));
    }

    #[test]
    fn scratch_buffers_are_block_sized() {
        let s = BlockScratch::new();
        assert_eq!(s.sel.len(), BLOCK_ROWS);
        assert_eq!(s.words.len(), BLOCK_WORDS);
    }

    // ---- packed (SWAR) kernels ----

    use crate::encode::pack;

    const CLASSES: [PackClass; 3] = [PackClass::W7, PackClass::W15, PackClass::W31];

    fn codes_for(class: PackClass, n: usize) -> Vec<u64> {
        let m = class.value_mask();
        (0..n as u64)
            .map(|i| (i.wrapping_mul(2654435761)) & m)
            .collect()
    }

    fn dense_bits(words: &[u64], n: usize) -> Vec<bool> {
        (0..n)
            .map(|i| words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1)
            .collect()
    }

    #[test]
    fn packed_mask_matches_per_row_oracle_across_classes_and_offsets() {
        for class in CLASSES {
            let codes = codes_for(class, 500);
            let packed = pack(codes.iter().copied(), class);
            let m = class.value_mask();
            for (offset, n) in [
                (0usize, 500usize),
                (0, 64),
                (3, 90),
                (129, 333),
                (7, 1),
                (499, 1),
            ] {
                for (lo, hi) in [
                    (0, None),
                    (m / 4, Some(3 * m / 4)),
                    (m / 2, None),
                    (1, Some(1)),
                ] {
                    let window = &codes[offset..offset + n];
                    let expect: Vec<bool> = window
                        .iter()
                        .map(|&c| lo <= c && hi.is_none_or(|h| c <= h))
                        .collect();
                    let mut out = vec![0u64; n.div_ceil(WORD_BITS)];
                    let any =
                        packed_mask(&packed, class, offset, n, lo, hi, MaskMode::Set, &mut out);
                    assert_eq!(
                        dense_bits(&out, n),
                        expect,
                        "{class:?} offset={offset} n={n} lo={lo} hi={hi:?}"
                    );
                    assert_eq!(any != 0, expect.iter().any(|&b| b));
                    // AND mode against all-ones gives the same selection.
                    let mut ones = vec![u64::MAX; out.len()];
                    packed_mask(&packed, class, offset, n, lo, hi, MaskMode::And, &mut ones);
                    // Trim tail bits the Set path leaves clear.
                    assert_eq!(dense_bits(&ones, n), expect);
                    // Count fast path agrees.
                    assert_eq!(
                        packed_count(&packed, class, offset, n, lo, hi),
                        expect.iter().filter(|&&b| b).count()
                    );
                }
            }
        }
    }

    #[test]
    fn packed_mask_and_mode_intersects_two_predicates() {
        let class = PackClass::W15;
        let codes = codes_for(class, 300);
        let packed = pack(codes.iter().copied(), class);
        let (lo1, hi1) = (2000u64, Some(30000u64));
        let (lo2, hi2) = (8000u64, Some(20000u64));
        let mut out = vec![0u64; 300usize.div_ceil(WORD_BITS)];
        packed_mask(&packed, class, 0, 300, lo1, hi1, MaskMode::Set, &mut out);
        packed_mask(&packed, class, 0, 300, lo2, hi2, MaskMode::And, &mut out);
        let expect: Vec<bool> = codes
            .iter()
            .map(|&c| c >= lo1 && c <= hi1.unwrap() && c >= lo2 && c <= hi2.unwrap())
            .collect();
        assert_eq!(dense_bits(&out, 300), expect);
    }

    #[test]
    fn packed_sum_same_layout_matches_filtered_fold() {
        for class in CLASSES {
            let pred_codes = codes_for(class, 450);
            let agg_codes: Vec<u64> = codes_for(class, 450)
                .iter()
                .map(|c| c.rotate_left(5) & class.value_mask())
                .collect();
            let pp = pack(pred_codes.iter().copied(), class);
            let ap = pack(agg_codes.iter().copied(), class);
            let m = class.value_mask();
            for (offset, n) in [(0usize, 450usize), (5, 200), (63, 65)] {
                for (lo, hi) in [(0u64, None), (m / 3, Some(2 * m / 3))] {
                    let (cnt, sum) = packed_sum_same_layout(&pp, &ap, class, offset, n, lo, hi);
                    let mut ecnt = 0u64;
                    let mut esum = 0u128;
                    for i in offset..offset + n {
                        let c = pred_codes[i];
                        if lo <= c && hi.is_none_or(|h| c <= h) {
                            ecnt += 1;
                            esum += agg_codes[i] as u128;
                        }
                    }
                    assert_eq!(
                        (cnt, sum),
                        (ecnt, esum),
                        "{class:?} {offset} {n} {lo} {hi:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn fetch_folds_match_slice_folds() {
        let vals: Vec<Value> = (0..200u64).map(|v| v * 31 % 1009).collect();
        let p = pred(100, 800);
        let nw = vals.len().div_ceil(WORD_BITS);
        let mut words = vec![0u64; nw];
        mask_first(&vals, p, &mut words);
        let (n_ref, sum_ref) = mask_sum(&vals, &words);
        let (n, sum) = mask_sum_fetch(&words, |i| vals[i]);
        assert_eq!((n, sum), (n_ref, sum_ref));
        let (_, lo) = mask_min(&vals, &words);
        let (_, lo2) = mask_extreme_fetch(&words, Value::MAX, Value::min, |i| vals[i]);
        assert_eq!(lo, lo2);
        let (_, hi) = mask_max(&vals, &words);
        let (_, hi2) = mask_extreme_fetch(&words, Value::MIN, Value::max, |i| vals[i]);
        assert_eq!(hi, hi2);
    }
}
