//! Histograms used for the Grid Tree's query-skew computation and for
//! equi-depth partitioning.
//!
//! The paper approximates the continuous query PDF over a dimension with a
//! histogram of (by default) 128 bins (§4.2.1): a query whose filter range
//! intersects `m` contiguous bins contributes `1/m` mass to each of them, so
//! the total histogram mass equals the number of queries.

use crate::dataset::Value;

/// A one-dimensional histogram with explicit bin edges and floating-point
/// mass per bin.
///
/// Bin `i` covers the half-open value range `[edges[i], edges[i+1])`, except
/// the last bin which is closed on the right so the histogram covers the full
/// `[lo, hi]` domain it was built over.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    edges: Vec<Value>,
    mass: Vec<f64>,
}

impl Histogram {
    /// Creates an equi-width histogram with `bins` bins over `[lo, hi]`.
    ///
    /// If the domain has fewer distinct integer values than `bins`, one bin is
    /// created per distinct value (matching §4.3.2: "if there are fewer than
    /// 128 unique values ... we create a bin for each unique value").
    pub fn equi_width(lo: Value, hi: Value, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        let hi = hi.max(lo);
        let span = hi - lo;
        // Number of representable integer values in [lo, hi].
        let distinct = span.saturating_add(1);
        let bins = if distinct < bins as u64 {
            distinct.max(1) as usize
        } else {
            bins
        };
        let mut edges = Vec::with_capacity(bins + 1);
        for i in 0..bins {
            edges.push(lo + (span as u128 * i as u128 / bins as u128) as Value);
        }
        edges.push(hi);
        // De-duplicate degenerate edges (possible when span < bins).
        edges.dedup();
        if edges.len() < 2 {
            edges = vec![lo, hi.max(lo.saturating_add(1))];
        }
        let n = edges.len() - 1;
        Self {
            edges,
            mass: vec![0.0; n],
        }
    }

    /// Creates a histogram with one bin per distinct value of `values`.
    pub fn per_value(values: &[Value]) -> Self {
        let mut distinct: Vec<Value> = values.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.is_empty() {
            return Self::equi_width(0, 1, 1);
        }
        let mut edges = distinct.clone();
        // The final edge closes the last per-value bin.
        let last = *distinct.last().unwrap();
        edges.push(last.saturating_add(1));
        let n = edges.len() - 1;
        Self {
            edges,
            mass: vec![0.0; n],
        }
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.mass.len()
    }

    /// The bin edges (length `num_bins() + 1`).
    pub fn edges(&self) -> &[Value] {
        &self.edges
    }

    /// Per-bin mass.
    pub fn mass(&self) -> &[f64] {
        &self.mass
    }

    /// Total mass across all bins.
    pub fn total_mass(&self) -> f64 {
        self.mass.iter().sum()
    }

    /// Domain covered by the histogram.
    pub fn domain(&self) -> (Value, Value) {
        (self.edges[0], *self.edges.last().unwrap())
    }

    /// Index of the bin containing `v`, clamped into range.
    pub fn bin_of(&self, v: Value) -> usize {
        let n = self.num_bins();
        if v <= self.edges[0] {
            return 0;
        }
        if v >= self.edges[n] {
            return n - 1;
        }
        // partition_point returns the first edge > v; the bin is one before.
        let idx = self.edges.partition_point(|&e| e <= v);
        (idx - 1).min(n - 1)
    }

    /// Adds `weight` of point mass to the bin containing `v`.
    pub fn add_value(&mut self, v: Value, weight: f64) {
        let b = self.bin_of(v);
        self.mass[b] += weight;
    }

    /// Adds a query filter range `[lo, hi]` (inclusive): if the range
    /// intersects `m` contiguous bins, each receives `1/m` mass, so every
    /// query contributes exactly one unit of mass (§4.2.1).
    pub fn add_query_range(&mut self, lo: Value, hi: Value) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let b_lo = self.bin_of(lo);
        let b_hi = self.bin_of(hi);
        let m = (b_hi - b_lo + 1) as f64;
        for b in b_lo..=b_hi {
            self.mass[b] += 1.0 / m;
        }
    }

    /// Mass restricted to the bin range `[from, to)`.
    pub fn mass_in(&self, from: usize, to: usize) -> f64 {
        self.mass[from..to].iter().sum()
    }

    /// The value at which bin `bin` starts.
    pub fn bin_start(&self, bin: usize) -> Value {
        self.edges[bin]
    }

    /// Approximate heap size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.edges.capacity() * std::mem::size_of::<Value>()
            + self.mass.capacity() * std::mem::size_of::<f64>()
    }
}

/// Computes equi-depth partition boundaries for `values` split into `p`
/// partitions: the returned vector has `p + 1` entries, the first being the
/// minimum value and the last being `max + 1`, such that partition `i` covers
/// values in `[boundaries[i], boundaries[i+1])` and partitions hold roughly
/// equal numbers of points.
///
/// Ties are kept within a single partition boundary (a value never straddles
/// two partitions), so heavily skewed data may produce fewer distinct
/// boundaries than requested.
pub fn equi_depth_boundaries(values: &[Value], p: usize) -> Vec<Value> {
    assert!(p > 0, "need at least one partition");
    let mut sorted: Vec<Value> = values.to_vec();
    sorted.sort_unstable();
    if sorted.is_empty() {
        return vec![0, 1];
    }
    let n = sorted.len();
    let max = *sorted.last().unwrap();
    let mut boundaries = Vec::with_capacity(p + 1);
    boundaries.push(sorted[0]);
    for i in 1..p {
        let idx = (i as u128 * n as u128 / p as u128) as usize;
        let b = sorted[idx.min(n - 1)];
        if b > *boundaries.last().unwrap() {
            boundaries.push(b);
        }
    }
    let end = max.saturating_add(1);
    if end > *boundaries.last().unwrap() {
        boundaries.push(end);
    } else {
        boundaries.push(boundaries.last().unwrap().saturating_add(1));
    }
    boundaries
}

/// Locates the partition of `v` given equi-depth `boundaries` as produced by
/// [`equi_depth_boundaries`]: the last partition whose start is `<= v`,
/// clamped into range.
pub fn partition_of(boundaries: &[Value], v: Value) -> usize {
    let p = boundaries.len() - 1;
    if v < boundaries[0] {
        return 0;
    }
    let idx = boundaries.partition_point(|&b| b <= v);
    idx.saturating_sub(1).min(p - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equi_width_covers_domain() {
        let h = Histogram::equi_width(0, 1000, 10);
        assert_eq!(h.num_bins(), 10);
        assert_eq!(h.domain(), (0, 1000));
        assert_eq!(h.bin_of(0), 0);
        assert_eq!(h.bin_of(1000), 9);
        assert_eq!(h.bin_of(999), 9);
        assert_eq!(h.bin_of(100), 1);
    }

    #[test]
    fn equi_width_shrinks_to_distinct_values() {
        // Domain with only 4 distinct integers gets at most 4 bins.
        let h = Histogram::equi_width(10, 13, 128);
        assert!(h.num_bins() <= 4);
        assert_eq!(h.domain().0, 10);
    }

    #[test]
    fn per_value_histogram_builds_one_bin_per_distinct() {
        let h = Histogram::per_value(&[5, 5, 7, 9, 9, 9]);
        assert_eq!(h.num_bins(), 3);
        assert_eq!(h.bin_of(5), 0);
        assert_eq!(h.bin_of(7), 1);
        assert_eq!(h.bin_of(9), 2);
        // Values between distinct values fall into the lower bin.
        assert_eq!(h.bin_of(8), 1);
    }

    #[test]
    fn query_range_mass_sums_to_one_per_query() {
        let mut h = Histogram::equi_width(0, 100, 10);
        h.add_query_range(0, 100);
        h.add_query_range(35, 35);
        h.add_query_range(90, 10); // reversed bounds are tolerated
        assert!((h.total_mass() - 3.0).abs() < 1e-9);
        // The equality query put all of its mass in one bin.
        assert!((h.mass()[h.bin_of(35)] - (1.0 / 10.0 + 1.0 + 1.0 / 9.0)).abs() < 1e-9);
    }

    #[test]
    fn add_value_accumulates_weight() {
        let mut h = Histogram::equi_width(0, 10, 5);
        h.add_value(3, 2.5);
        h.add_value(3, 0.5);
        assert!((h.mass()[h.bin_of(3)] - 3.0).abs() < 1e-12);
        assert!((h.mass_in(0, h.num_bins()) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn equi_depth_boundaries_balance_points() {
        let values: Vec<Value> = (0..1000).collect();
        let b = equi_depth_boundaries(&values, 4);
        assert_eq!(b.len(), 5);
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), 1000);
        // Each partition holds ~250 values.
        for w in b.windows(2) {
            let cnt = values.iter().filter(|&&v| v >= w[0] && v < w[1]).count();
            assert!((200..=300).contains(&cnt), "unbalanced partition: {cnt}");
        }
    }

    #[test]
    fn equi_depth_handles_heavy_ties() {
        let mut values = vec![7u64; 500];
        values.extend(0..10u64);
        let b = equi_depth_boundaries(&values, 8);
        // Boundaries are strictly increasing despite the ties.
        assert!(b.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn partition_of_respects_boundaries() {
        let b = vec![0u64, 10, 20, 30];
        assert_eq!(partition_of(&b, 0), 0);
        assert_eq!(partition_of(&b, 9), 0);
        assert_eq!(partition_of(&b, 10), 1);
        assert_eq!(partition_of(&b, 29), 2);
        assert_eq!(partition_of(&b, 1000), 2);
    }

    #[test]
    fn empty_inputs_do_not_panic() {
        let b = equi_depth_boundaries(&[], 4);
        assert_eq!(b.len(), 2);
        let h = Histogram::per_value(&[]);
        assert_eq!(h.num_bins(), 1);
    }
}
