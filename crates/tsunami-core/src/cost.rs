//! The analytic linear cost model used to optimize grid layouts (§5.3.1).
//!
//! ```text
//! Time = w0 * (# cell ranges) + w1 * (# scanned points) * (# filtered dims)
//! ```
//!
//! * A *cell range* is a maximal run of intersecting cells that is contiguous
//!   in physical storage; each range costs one lookup-table access plus the
//!   likely cache miss of jumping to a new storage location (`w0`).
//! * Each scanned point costs one column access per filtered dimension
//!   (`w1`), because data lives in a column store and only filtered columns
//!   are touched.
//!
//! Aggregation time is deliberately *not* modeled: it is a fixed cost paid by
//! every index, so it does not affect the optimizer's choices.

use std::time::Instant;

/// Features of a query execution that the cost model prices.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostFeatures {
    /// Number of contiguous cell ranges visited in physical storage.
    pub cell_ranges: f64,
    /// Number of points scanned (matching or not).
    pub scanned_points: f64,
    /// Number of dimensions the query filters.
    pub filtered_dims: f64,
}

/// The linear cost model `w0 * ranges + w1 * points * dims`.
///
/// Weights are in arbitrary time units (the default values are nanoseconds
/// calibrated for a typical modern core); only their *ratio* matters for
/// optimization decisions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of visiting one cell range (lookup + cache miss), in ns.
    pub w0: f64,
    /// Cost of scanning one dimension of one point, in ns.
    pub w1: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Roughly: a random-access jump ~100ns, a sequential per-value
        // predicate check ~1ns. These defaults make tests deterministic;
        // `calibrate` measures the actual machine.
        Self { w0: 100.0, w1: 1.0 }
    }
}

impl CostModel {
    /// Creates a cost model from explicit weights.
    pub fn new(w0: f64, w1: f64) -> Self {
        Self { w0, w1 }
    }

    /// Predicted query time (in the model's time units) for the features.
    #[inline]
    pub fn predict(&self, f: &CostFeatures) -> f64 {
        self.w0 * f.cell_ranges + self.w1 * f.scanned_points * f.filtered_dims
    }

    /// Predicted query time from raw feature values.
    #[inline]
    pub fn predict_raw(&self, cell_ranges: f64, scanned_points: f64, filtered_dims: f64) -> f64 {
        self.predict(&CostFeatures {
            cell_ranges,
            scanned_points,
            filtered_dims,
        })
    }

    /// Calibrates `w0` and `w1` with a short micro-benchmark on the current
    /// machine: `w1` from a sequential predicate-checking scan and `w0` from
    /// strided random-ish accesses that defeat the prefetcher.
    pub fn calibrate() -> Self {
        // --- w1: sequential scan cost per element ---
        let n = 1 << 18;
        let data: Vec<u64> = (0..n as u64).map(|v| v.wrapping_mul(2654435761)).collect();
        let start = Instant::now();
        let mut matched = 0u64;
        for &v in &data {
            if v > u64::MAX / 2 {
                matched += 1;
            }
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        std::hint::black_box(matched);
        let w1 = (elapsed / n as f64).clamp(0.1, 50.0);

        // --- w0: strided access cost (approximates a cache miss + lookup) ---
        let jumps = 1 << 14;
        let big: Vec<u64> = (0..(1usize << 20) as u64).collect();
        let start = Instant::now();
        let mut acc = 0u64;
        let mut idx = 12345usize;
        for _ in 0..jumps {
            idx = (idx
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407))
                % big.len();
            acc = acc.wrapping_add(big[idx]);
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        std::hint::black_box(acc);
        let w0 = (elapsed / jumps as f64).clamp(10.0, 2000.0);

        Self { w0, w1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_is_linear_in_features() {
        let m = CostModel::new(10.0, 2.0);
        assert_eq!(m.predict_raw(0.0, 0.0, 0.0), 0.0);
        assert_eq!(m.predict_raw(1.0, 0.0, 3.0), 10.0);
        assert_eq!(m.predict_raw(0.0, 100.0, 3.0), 600.0);
        assert_eq!(m.predict_raw(2.0, 100.0, 3.0), 620.0);
    }

    #[test]
    fn more_ranges_or_points_cost_more() {
        let m = CostModel::default();
        let base = m.predict_raw(10.0, 1000.0, 2.0);
        assert!(m.predict_raw(20.0, 1000.0, 2.0) > base);
        assert!(m.predict_raw(10.0, 2000.0, 2.0) > base);
        assert!(m.predict_raw(10.0, 1000.0, 4.0) > base);
    }

    #[test]
    fn default_weights_favor_fewer_random_jumps() {
        // The whole point of cell ranges: a jump must cost much more than a
        // single sequential value check.
        let m = CostModel::default();
        assert!(m.w0 > 10.0 * m.w1);
    }

    #[test]
    fn calibrate_produces_sane_weights() {
        let m = CostModel::calibrate();
        assert!(m.w0 > 0.0 && m.w0.is_finite());
        assert!(m.w1 > 0.0 && m.w1.is_finite());
        // A random jump should not be cheaper than a sequential check.
        assert!(m.w0 >= m.w1);
    }
}
