//! Shared primitives for the Tsunami learned multi-dimensional index reproduction.
//!
//! This crate holds the vocabulary types used by every other crate in the
//! workspace:
//!
//! * [`Value`], [`Point`], [`Dataset`] — the data model. All attributes are
//!   unsigned 64-bit integers, mirroring the paper's setup where strings are
//!   dictionary encoded and decimals are scaled to integers (§6.1).
//! * [`Predicate`], [`Query`], [`Workload`], [`Aggregation`], [`AggResult`] —
//!   the query model: conjunctions of per-dimension range filters feeding an
//!   aggregation (§2).
//! * [`Histogram`] and [`emd`](crate::emd()) — the building blocks of the Grid Tree's query
//!   skew definition (§4.2.1).
//! * [`CostModel`] — the analytic linear cost model used to optimize both
//!   Flood and the Augmented Grid (§5.3.1).
//! * [`EncodedBlock`], [`encode`] — per-block lightweight column encodings
//!   (frame-of-reference + bit-packing, dictionary codes) with min/max
//!   metadata; the executor's packed kernels evaluate predicates on them
//!   without decoding.
//! * [`ScanPlan`], [`exec`] — the shared scan-execution engine: indexes plan
//!   queries as ordered lists of contiguous physical ranges (with §6.1
//!   exact-range flags and residual predicates) and one vectorized executor
//!   runs every plan, serially or in parallel.
//! * [`MultiDimIndex`] — the trait every index in the workspace (learned and
//!   non-learned) implements so benchmarks can treat them uniformly; query
//!   execution is provided by the trait on top of [`exec`].

pub mod cost;
pub mod dataset;
pub mod emd;
pub mod encode;
pub mod error;
pub mod exec;
pub mod histogram;
pub mod index;
pub mod query;
pub mod sample;
pub mod size;
pub mod tombstone;

pub use cost::{CostFeatures, CostModel};
pub use dataset::{Dataset, Point, Value};
pub use emd::emd;
pub use encode::{BlockData, BlockTest, EncodeOptions, EncodedBlock, PackClass};
pub use error::{Result, TsunamiError};
pub use exec::{
    BlockScratch, KernelTier, PlanPartial, ScanCounters, ScanPlan, ScanRange, ScanSource,
};
pub use histogram::Histogram;
pub use index::{BuildTiming, IndexStats, MultiDimIndex};
pub use query::{AggAccumulator, AggResult, Aggregation, Predicate, Query, Workload};
pub use tombstone::TombstoneSet;
