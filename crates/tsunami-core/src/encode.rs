//! Per-block lightweight column encodings: frame-of-reference + bit-packing
//! and dictionary codes, with per-block min/max metadata.
//!
//! # Format
//!
//! A column's encoded region is a sequence of [`EncodedBlock`]s, each
//! covering exactly [`crate::exec::BLOCK_ROWS`] rows aligned to
//! the executor's absolute block grid (block `b` holds physical rows
//! `b * BLOCK_ROWS .. (b + 1) * BLOCK_ROWS`). Three payloads exist:
//!
//! * **FOR** — frame-of-reference + bit-packing: each value is stored as
//!   `value - block_min` in a fixed-width field. The natural fit for numeric
//!   dimensions whose per-block spread is far smaller than the `u64` domain.
//! * **Dict** — dictionary codes: the block's distinct values, sorted
//!   ascending, with each row storing its value's rank. Sorted codes preserve
//!   range-predicate semantics (a value range maps to a contiguous code
//!   range), so packed kernels work on dictionary blocks unchanged. Wins over
//!   FOR on low-cardinality dimensions whose values are spread wide.
//! * **Plain** — the raw values, kept when neither encoding saves space.
//!   Plain blocks still carry the min/max metadata, so they participate in
//!   block skipping.
//!
//! # Field layout
//!
//! Packed fields live in `width + 1`-bit slots: `width` payload bits plus one
//! spare **delimiter bit** (always 0 in storage) that the SWAR kernels in
//! [`exec::kernels`](crate::exec::kernels) borrow for word-parallel range
//! compares. Widths are quantized to [`PackClass`]es whose slot sizes divide
//! 64 (8/16/32 bits), so fields never straddle word boundaries and the
//! row-to-slot mapping is a shift and a mask — no division anywhere on the
//! scan path. The quantization costs a little density versus exact-width
//! packing, but buys branch-free constant-shift kernels.
//!
//! # Two bound pairs per block
//!
//! * `min`/`max` — **physical** bounds over every stored row, dead or alive.
//!   `min` is the FOR reference; packing must cover dead rows too because
//!   permutes and compactions decode them.
//! * `live_bounds` — bounds over the rows **live at encode time** (`None`
//!   when the whole block was dead). These drive skip-before-decode: after
//!   encoding, tombstone sets only grow (any mutation that revives or moves
//!   rows decodes the block first), so the true live set only shrinks and
//!   encode-time live bounds remain a sound over-approximation forever.

use crate::dataset::Value;
use crate::exec::BLOCK_ROWS;

/// The quantized packing widths. Slot = width + 1 bits (one spare delimiter
/// bit for the SWAR kernels); every slot size divides 64, so a word holds a
/// whole number of fields and extraction is shift-and-mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackClass {
    /// 7-bit fields in 8-bit slots: 8 fields per word (8× vs plain).
    W7,
    /// 15-bit fields in 16-bit slots: 4 fields per word (4× vs plain).
    W15,
    /// 31-bit fields in 32-bit slots: 2 fields per word (2× vs plain).
    W31,
}

impl PackClass {
    /// Payload bits per field.
    #[inline(always)]
    pub fn width(self) -> u32 {
        match self {
            PackClass::W7 => 7,
            PackClass::W15 => 15,
            PackClass::W31 => 31,
        }
    }

    /// Slot bits per field (width + delimiter).
    #[inline(always)]
    pub fn slot(self) -> u32 {
        self.width() + 1
    }

    /// Fields per 64-bit word.
    #[inline(always)]
    pub fn per_word(self) -> usize {
        (64 / self.slot()) as usize
    }

    /// `log2(per_word)`, so `row / per_word` is a shift.
    #[inline(always)]
    pub fn log_per_word(self) -> u32 {
        match self {
            PackClass::W7 => 3,
            PackClass::W15 => 2,
            PackClass::W31 => 1,
        }
    }

    /// Mask of one field's payload bits.
    #[inline(always)]
    pub fn value_mask(self) -> u64 {
        (1u64 << self.width()) - 1
    }

    /// Mask of every delimiter bit in a word.
    #[inline(always)]
    pub fn delim_mask(self) -> u64 {
        match self {
            PackClass::W7 => 0x8080_8080_8080_8080,
            PackClass::W15 => 0x8000_8000_8000_8000,
            PackClass::W31 => 0x8000_0000_8000_0000,
        }
    }

    /// A word with 1 in the lowest bit of every slot (the SWAR replication
    /// constant: `c * low_ones()` broadcasts `c` to every field).
    #[inline(always)]
    pub fn low_ones(self) -> u64 {
        match self {
            PackClass::W7 => 0x0101_0101_0101_0101,
            PackClass::W15 => 0x0001_0001_0001_0001,
            PackClass::W31 => 0x0000_0001_0000_0001,
        }
    }

    /// The smallest class whose payload width holds `bits` bits, if any.
    pub fn for_bits(bits: u32) -> Option<PackClass> {
        match bits {
            0..=7 => Some(PackClass::W7),
            8..=15 => Some(PackClass::W15),
            16..=31 => Some(PackClass::W31),
            _ => None,
        }
    }

    /// Packed words needed for `len` fields.
    pub fn words_for(self, len: usize) -> usize {
        len.div_ceil(self.per_word())
    }
}

/// Extracts field `i` of a packed array (raw code, no FOR/dict mapping).
#[inline(always)]
pub fn extract(packed: &[u64], class: PackClass, i: usize) -> u64 {
    let w = i >> class.log_per_word();
    let s = ((i & (class.per_word() - 1)) as u32) * class.slot();
    (packed[w] >> s) & class.value_mask()
}

/// Packs `codes` (each `< 2^width` of `class`) into delimiter-slot layout.
/// Unused tail slots of the final word are zero.
pub fn pack(codes: impl ExactSizeIterator<Item = u64>, class: PackClass) -> Box<[u64]> {
    let len = codes.len();
    let f = class.per_word();
    let slot = class.slot();
    let mut out = vec![0u64; class.words_for(len)];
    for (i, code) in codes.enumerate() {
        debug_assert!(code <= class.value_mask());
        out[i >> class.log_per_word()] |= code << (((i & (f - 1)) as u32) * slot);
    }
    out.into_boxed_slice()
}

/// One encoded block's payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockData {
    /// Raw values (incompressible fallback; still carries block metadata).
    Plain(Box<[Value]>),
    /// Frame-of-reference: field `i` stores `value_i - block_min`.
    For {
        class: PackClass,
        packed: Box<[u64]>,
    },
    /// Dictionary: field `i` stores the rank of `value_i` in `uniques`
    /// (sorted ascending, so code order preserves value order).
    Dict {
        class: PackClass,
        uniques: Box<[Value]>,
        packed: Box<[u64]>,
    },
}

/// A range predicate translated into one block's representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockTest {
    /// No live row of the block can match: skip without decoding.
    Skip,
    /// Every live row matches: drop this predicate for the block.
    AllLive,
    /// Test packed codes against `lo <= code` and (when `hi` is `Some`)
    /// `code <= hi`. `hi = None` means every stored code passes the upper
    /// bound, which also guarantees `hi + 1` never overflows the field width
    /// in the SWAR kernels.
    Packed { lo: u64, hi: Option<u64> },
    /// Plain payload: evaluate the predicate on the raw values.
    Plain,
}

/// Tuning knobs for the per-block encoding choice.
#[derive(Debug, Clone, Copy)]
pub struct EncodeOptions {
    /// FOR blocks whose delta needs more than this many bits fall back to
    /// Plain (or Dict). Capped at 31: the widest [`PackClass`].
    pub max_for_bits: u32,
    /// Dictionary encoding is considered only up to this many distinct
    /// values per block.
    pub dict_max: usize,
}

impl Default for EncodeOptions {
    fn default() -> Self {
        Self {
            max_for_bits: 31,
            dict_max: 256,
        }
    }
}

/// One grid-aligned encoded block with its scan metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedBlock {
    len: u32,
    /// Physical minimum over every stored row (the FOR reference).
    min: Value,
    /// Physical maximum over every stored row.
    max: Value,
    /// Bounds over the rows live at encode time; `None` = block fully dead.
    live: Option<(Value, Value)>,
    data: BlockData,
}

impl EncodedBlock {
    /// Encodes one block, choosing the cheapest eligible payload.
    ///
    /// `is_live(i)` reports whether local row `i` is live; live bounds are
    /// computed from live rows only, while the payload (and physical
    /// min/max) covers every row — dead rows must survive decode/permute.
    pub fn encode(values: &[Value], is_live: impl Fn(usize) -> bool, opts: &EncodeOptions) -> Self {
        assert!(!values.is_empty() && values.len() <= BLOCK_ROWS);
        let mut min = Value::MAX;
        let mut max = Value::MIN;
        let mut live_lo = Value::MAX;
        let mut live_hi = Value::MIN;
        let mut any_live = false;
        for (i, &v) in values.iter().enumerate() {
            min = min.min(v);
            max = max.max(v);
            if is_live(i) {
                any_live = true;
                live_lo = live_lo.min(v);
                live_hi = live_hi.max(v);
            }
        }
        let live = any_live.then_some((live_lo, live_hi));
        let plain_bytes = values.len() * 8;

        let delta = max - min;
        let delta_bits = 64 - delta.leading_zeros();
        let for_class = if delta_bits <= opts.max_for_bits.min(31) {
            PackClass::for_bits(delta_bits)
        } else {
            None
        };
        let for_bytes = for_class.map(|c| c.words_for(values.len()) * 8);

        let mut uniques: Vec<Value> = values.to_vec();
        uniques.sort_unstable();
        uniques.dedup();
        let dict_class = if uniques.len() <= opts.dict_max {
            PackClass::for_bits(64 - (uniques.len() as u64 - 1).leading_zeros())
        } else {
            None
        };
        let dict_bytes = dict_class.map(|c| c.words_for(values.len()) * 8 + uniques.len() * 8);

        let data = match (for_class, for_bytes, dict_class, dict_bytes) {
            // FOR wins ties: no indirection on decode.
            (Some(fc), Some(fb), _, db) if fb < plain_bytes && db.is_none_or(|d| fb <= d) => {
                BlockData::For {
                    class: fc,
                    packed: pack(values.iter().map(|&v| v - min), fc),
                }
            }
            (_, _, Some(dc), Some(db)) if db < plain_bytes => {
                let codes = values
                    .iter()
                    .map(|v| uniques.partition_point(|u| u < v) as u64);
                BlockData::Dict {
                    class: dc,
                    packed: pack(codes, dc),
                    uniques: uniques.into_boxed_slice(),
                }
            }
            _ => BlockData::Plain(values.to_vec().into_boxed_slice()),
        };
        Self {
            len: values.len() as u32,
            min,
            max,
            live,
            data,
        }
    }

    /// Number of rows stored.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Never empty (asserted at encode).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Physical bounds over every stored row.
    pub fn bounds(&self) -> (Value, Value) {
        (self.min, self.max)
    }

    /// Bounds over the rows live at encode time (`None` = fully dead).
    /// Sound to prune on forever: the live set only shrinks after encoding.
    pub fn live_bounds(&self) -> Option<(Value, Value)> {
        self.live
    }

    /// The payload.
    pub fn data(&self) -> &BlockData {
        &self.data
    }

    /// Short payload label for stats and bench tables.
    pub fn kind_label(&self) -> &'static str {
        match self.data {
            BlockData::Plain(_) => "plain",
            BlockData::For { .. } => "for",
            BlockData::Dict { .. } => "dict",
        }
    }

    /// Value of local row `i`.
    #[inline]
    pub fn value_at(&self, i: usize) -> Value {
        debug_assert!(i < self.len());
        match &self.data {
            BlockData::Plain(vals) => vals[i],
            BlockData::For { class, packed } => self.min + extract(packed, *class, i),
            BlockData::Dict {
                class,
                uniques,
                packed,
            } => uniques[extract(packed, *class, i) as usize],
        }
    }

    /// Decodes local rows `offset .. offset + out.len()` into `out`.
    pub fn decode_into(&self, offset: usize, out: &mut [Value]) {
        debug_assert!(offset + out.len() <= self.len());
        match &self.data {
            BlockData::Plain(vals) => out.copy_from_slice(&vals[offset..offset + out.len()]),
            BlockData::For { class, packed } => {
                for (k, slot) in out.iter_mut().enumerate() {
                    *slot = self.min + extract(packed, *class, offset + k);
                }
            }
            BlockData::Dict {
                class,
                uniques,
                packed,
            } => {
                for (k, slot) in out.iter_mut().enumerate() {
                    *slot = uniques[extract(packed, *class, offset + k) as usize];
                }
            }
        }
    }

    /// Translates the value range `[lo, hi]` into this block's
    /// representation, using the live bounds for skip / all-match decisions.
    pub fn classify(&self, lo: Value, hi: Value) -> BlockTest {
        let Some((live_lo, live_hi)) = self.live else {
            return BlockTest::Skip;
        };
        if hi < live_lo || lo > live_hi {
            return BlockTest::Skip;
        }
        if lo <= live_lo && live_hi <= hi {
            return BlockTest::AllLive;
        }
        match &self.data {
            BlockData::Plain(_) => BlockTest::Plain,
            BlockData::For { .. } => {
                // Not Skip, so [lo, hi] overlaps the live bounds, which sit
                // inside the physical bounds: hi >= min and lo <= max.
                let delta = self.max - self.min;
                let lo_code = lo.saturating_sub(self.min);
                let hi_code = hi - self.min;
                debug_assert!(lo_code <= delta);
                if lo_code == 0 && hi_code >= delta {
                    // Every physical row matches (even stronger than the
                    // live-bounds check above, which may be narrower).
                    return BlockTest::AllLive;
                }
                BlockTest::Packed {
                    lo: lo_code,
                    hi: (hi_code < delta).then_some(hi_code),
                }
            }
            BlockData::Dict { uniques, .. } => {
                let lo_c = uniques.partition_point(|&u| u < lo);
                let hi_c = uniques.partition_point(|&u| u <= hi);
                if lo_c >= hi_c {
                    return BlockTest::Skip;
                }
                if lo_c == 0 && hi_c == uniques.len() {
                    return BlockTest::AllLive;
                }
                BlockTest::Packed {
                    lo: lo_c as u64,
                    hi: (hi_c < uniques.len()).then_some(hi_c as u64 - 1),
                }
            }
        }
    }

    /// Approximate heap bytes of the payload.
    pub fn size_bytes(&self) -> usize {
        match &self.data {
            BlockData::Plain(vals) => vals.len() * 8,
            BlockData::For { packed, .. } => packed.len() * 8,
            BlockData::Dict {
                uniques, packed, ..
            } => uniques.len() * 8 + packed.len() * 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_live(_: usize) -> bool {
        true
    }

    #[test]
    fn pack_and_extract_round_trip_every_class() {
        for class in [PackClass::W7, PackClass::W15, PackClass::W31] {
            let m = class.value_mask();
            let codes: Vec<u64> = (0..317u64).map(|i| (i * 2654435761) & m).collect();
            let packed = pack(codes.iter().copied(), class);
            assert_eq!(packed.len(), class.words_for(codes.len()));
            for (i, &c) in codes.iter().enumerate() {
                assert_eq!(extract(&packed, class, i), c, "{class:?} field {i}");
            }
            // Delimiter bits are never set in storage.
            for w in packed.iter() {
                assert_eq!(w & class.delim_mask(), 0);
            }
        }
    }

    #[test]
    fn encode_picks_for_on_narrow_numeric_blocks() {
        let vals: Vec<Value> = (0..1024u64).map(|i| 5_000 + (i * 37) % 4096).collect();
        let b = EncodedBlock::encode(&vals, all_live, &EncodeOptions::default());
        assert_eq!(b.kind_label(), "for");
        assert!(b.size_bytes() < vals.len() * 8 / 3);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(b.value_at(i), v);
        }
        let mut out = vec![0; 100];
        b.decode_into(500, &mut out);
        assert_eq!(&out[..], &vals[500..600]);
    }

    #[test]
    fn encode_picks_dict_on_low_cardinality_wide_values() {
        // 16 distinct values spread over the whole u64 domain: FOR is
        // ineligible (delta needs > 31 bits), Dict packs 8 codes per word.
        let uniques: Vec<Value> = (0..16u64).map(|i| i * 0x0100_0000_0000_0001).collect();
        let vals: Vec<Value> = (0..1024usize).map(|i| uniques[(i * 7) % 16]).collect();
        let b = EncodedBlock::encode(&vals, all_live, &EncodeOptions::default());
        assert_eq!(b.kind_label(), "dict");
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(b.value_at(i), v);
        }
    }

    #[test]
    fn encode_falls_back_to_plain_on_incompressible_blocks() {
        let vals: Vec<Value> = (0..1024u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let b = EncodedBlock::encode(&vals, all_live, &EncodeOptions::default());
        assert_eq!(b.kind_label(), "plain");
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(b.value_at(i), v);
        }
    }

    #[test]
    fn classify_uses_live_bounds_and_translates_codes() {
        let vals: Vec<Value> = (0..1024u64).map(|i| 1000 + i).collect();
        let b = EncodedBlock::encode(&vals, all_live, &EncodeOptions::default());
        assert_eq!(b.bounds(), (1000, 2023));
        assert_eq!(b.classify(0, 999), BlockTest::Skip);
        assert_eq!(b.classify(2024, u64::MAX), BlockTest::Skip);
        assert_eq!(b.classify(0, u64::MAX), BlockTest::AllLive);
        assert_eq!(b.classify(1000, 2023), BlockTest::AllLive);
        match b.classify(1500, 1600) {
            BlockTest::Packed { lo, hi } => {
                assert_eq!(lo, 500);
                assert_eq!(hi, Some(600));
            }
            other => panic!("expected packed test, got {other:?}"),
        }
        // Upper bound covering the whole block needs no hi test.
        match b.classify(1500, 5000) {
            BlockTest::Packed { lo: 500, hi: None } => {}
            other => panic!("expected open-topped packed test, got {other:?}"),
        }
    }

    #[test]
    fn dead_rows_shape_physical_but_not_live_bounds() {
        // Rows 0 and 1 hold the extremes but are dead.
        let mut vals: Vec<Value> = (0..256u64).map(|i| 100 + i).collect();
        vals[0] = 1;
        vals[1] = 1_000_000;
        let b = EncodedBlock::encode(&vals, |i| i >= 2, &EncodeOptions::default());
        assert_eq!(b.bounds(), (1, 1_000_000));
        assert_eq!(b.live_bounds(), Some((102, 355)));
        // A predicate touching only the dead extremes must skip...
        assert_eq!(b.classify(0, 50), BlockTest::Skip);
        assert_eq!(b.classify(500_000, u64::MAX), BlockTest::Skip);
        // ...while one covering the live span is all-match, and dead rows
        // still decode exactly (they are masked elsewhere, not here).
        assert_eq!(b.classify(102, 355), BlockTest::AllLive);
        assert_eq!(b.value_at(0), 1);
        assert_eq!(b.value_at(1), 1_000_000);
    }

    #[test]
    fn fully_dead_block_always_skips() {
        let vals: Vec<Value> = (0..64u64).collect();
        let b = EncodedBlock::encode(&vals, |_| false, &EncodeOptions::default());
        assert_eq!(b.live_bounds(), None);
        assert_eq!(b.classify(0, u64::MAX), BlockTest::Skip);
    }

    #[test]
    fn dict_classify_maps_value_ranges_to_code_ranges() {
        let uniques: Vec<Value> = vec![10, 20, 30, 40, u64::MAX / 2];
        let vals: Vec<Value> = (0..512usize).map(|i| uniques[i % 5]).collect();
        let b = EncodedBlock::encode(&vals, all_live, &EncodeOptions::default());
        assert_eq!(b.kind_label(), "dict");
        // [15, 35] covers uniques 20 and 30 -> codes 1..=2.
        match b.classify(15, 35) {
            BlockTest::Packed { lo: 1, hi: Some(2) } => {}
            other => panic!("unexpected {other:?}"),
        }
        // A gap between uniques matches nothing.
        assert_eq!(b.classify(21, 29), BlockTest::Skip);
        // Covering the top unique leaves the upper test open.
        match b.classify(25, u64::MAX) {
            BlockTest::Packed { lo: 2, hi: None } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn constant_block_packs_tight() {
        let vals = vec![42u64; 1024];
        let b = EncodedBlock::encode(&vals, all_live, &EncodeOptions::default());
        assert_eq!(b.kind_label(), "for");
        assert_eq!(b.size_bytes(), 1024 / 8 * 8);
        assert_eq!(b.value_at(1023), 42);
        assert_eq!(b.classify(42, 42), BlockTest::AllLive);
        assert_eq!(b.classify(0, 41), BlockTest::Skip);
    }
}
