//! Error types shared across the workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, TsunamiError>;

/// Errors produced while building or querying indexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsunamiError {
    /// A query or point referenced a dimension outside the dataset's arity.
    DimensionMismatch {
        /// Number of dimensions the dataset has.
        expected: usize,
        /// Dimension index (or arity) that was supplied.
        got: usize,
    },
    /// An operation that requires at least one row was given an empty dataset.
    EmptyDataset,
    /// An operation that requires at least one query was given an empty workload.
    EmptyWorkload,
    /// A range predicate had `lo > hi`.
    InvalidPredicate {
        /// Dimension the predicate filters.
        dim: usize,
        /// Lower bound supplied.
        lo: u64,
        /// Upper bound supplied.
        hi: u64,
    },
    /// A predicate or aggregation referenced a dimension at or beyond the
    /// dataset's width. Caught at the engine boundary so queries never
    /// silently mis-scan (predicates on phantom dimensions) or panic.
    DimensionOutOfBounds {
        /// Dimension that was referenced.
        dim: usize,
        /// Number of dimensions the dataset actually has.
        num_dims: usize,
    },
    /// A table name was not registered in the database.
    UnknownTable(String),
    /// A table with the same name is already registered.
    DuplicateTable(String),
    /// A column name was not found in the table's schema.
    UnknownColumn(String),
    /// A materialized-view name was not registered in the database.
    UnknownView(String),
    /// A materialized view with the same name is already registered.
    DuplicateView(String),
    /// The scheduler's bounded submission queue was full (backpressure).
    SchedulerQueueFull,
    /// The scheduler has shut down and no longer accepts queries.
    SchedulerShutdown,
    /// A query panicked on a scheduler worker; the panic was caught so the
    /// pool keeps serving, and the payload message is preserved here.
    QueryPanicked(String),
    /// A structural invariant was violated while building an index.
    Build(String),
    /// An invalid configuration value was supplied.
    Config(String),
    /// A durability operation (WAL append/commit, checkpoint, recovery)
    /// failed. Carries the rendered `io::Error` (or codec detail) so the
    /// error type stays `Clone + PartialEq` like every other variant.
    Durability(String),
}

impl fmt::Display for TsunamiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsunamiError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            TsunamiError::EmptyDataset => write!(f, "dataset has no rows"),
            TsunamiError::EmptyWorkload => write!(f, "workload has no queries"),
            TsunamiError::InvalidPredicate { dim, lo, hi } => {
                write!(f, "invalid predicate on dim {dim}: lo {lo} > hi {hi}")
            }
            TsunamiError::DimensionOutOfBounds { dim, num_dims } => {
                write!(
                    f,
                    "dimension {dim} out of bounds for a {num_dims}-dimensional dataset"
                )
            }
            TsunamiError::UnknownTable(name) => write!(f, "unknown table: {name}"),
            TsunamiError::DuplicateTable(name) => {
                write!(f, "table already registered: {name}")
            }
            TsunamiError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            TsunamiError::UnknownView(name) => write!(f, "unknown view: {name}"),
            TsunamiError::DuplicateView(name) => {
                write!(f, "view already registered: {name}")
            }
            TsunamiError::SchedulerQueueFull => {
                write!(f, "scheduler queue is full (backpressure)")
            }
            TsunamiError::SchedulerShutdown => write!(f, "scheduler has shut down"),
            TsunamiError::QueryPanicked(msg) => {
                write!(f, "query panicked on a scheduler worker: {msg}")
            }
            TsunamiError::Build(msg) => write!(f, "index build error: {msg}"),
            TsunamiError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            TsunamiError::Durability(msg) => write!(f, "durability error: {msg}"),
        }
    }
}

impl std::error::Error for TsunamiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TsunamiError::DimensionMismatch {
            expected: 4,
            got: 7,
        };
        assert!(e.to_string().contains("expected 4"));
        assert!(e.to_string().contains("got 7"));

        let e = TsunamiError::InvalidPredicate {
            dim: 2,
            lo: 10,
            hi: 3,
        };
        assert!(e.to_string().contains("dim 2"));

        assert!(TsunamiError::EmptyDataset.to_string().contains("no rows"));
        assert!(TsunamiError::Build("boom".into())
            .to_string()
            .contains("boom"));
        assert!(TsunamiError::Config("bad".into())
            .to_string()
            .contains("bad"));
        assert!(TsunamiError::EmptyWorkload.to_string().contains("queries"));
        let e = TsunamiError::DimensionOutOfBounds {
            dim: 9,
            num_dims: 3,
        };
        assert!(e.to_string().contains("dimension 9"));
        assert!(e.to_string().contains("3-dimensional"));
        assert!(TsunamiError::UnknownTable("trips".into())
            .to_string()
            .contains("trips"));
        assert!(TsunamiError::DuplicateTable("trips".into())
            .to_string()
            .contains("already"));
        assert!(TsunamiError::UnknownColumn("fare".into())
            .to_string()
            .contains("fare"));
        assert!(TsunamiError::UnknownView("daily".into())
            .to_string()
            .contains("daily"));
        assert!(TsunamiError::DuplicateView("daily".into())
            .to_string()
            .contains("already"));
        assert!(TsunamiError::SchedulerQueueFull
            .to_string()
            .contains("full"));
        assert!(TsunamiError::SchedulerShutdown
            .to_string()
            .contains("shut down"));
        assert!(TsunamiError::QueryPanicked("boom".into())
            .to_string()
            .contains("boom"));
        assert!(TsunamiError::Durability("fsync failed".into())
            .to_string()
            .contains("fsync failed"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(TsunamiError::EmptyDataset, TsunamiError::EmptyDataset);
        assert_ne!(
            TsunamiError::EmptyDataset,
            TsunamiError::Build("x".to_string())
        );
    }
}
