//! Error types shared across the workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, TsunamiError>;

/// Errors produced while building or querying indexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsunamiError {
    /// A query or point referenced a dimension outside the dataset's arity.
    DimensionMismatch {
        /// Number of dimensions the dataset has.
        expected: usize,
        /// Dimension index (or arity) that was supplied.
        got: usize,
    },
    /// An operation that requires at least one row was given an empty dataset.
    EmptyDataset,
    /// An operation that requires at least one query was given an empty workload.
    EmptyWorkload,
    /// A range predicate had `lo > hi`.
    InvalidPredicate {
        /// Dimension the predicate filters.
        dim: usize,
        /// Lower bound supplied.
        lo: u64,
        /// Upper bound supplied.
        hi: u64,
    },
    /// A structural invariant was violated while building an index.
    Build(String),
    /// An invalid configuration value was supplied.
    Config(String),
}

impl fmt::Display for TsunamiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsunamiError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            TsunamiError::EmptyDataset => write!(f, "dataset has no rows"),
            TsunamiError::EmptyWorkload => write!(f, "workload has no queries"),
            TsunamiError::InvalidPredicate { dim, lo, hi } => {
                write!(f, "invalid predicate on dim {dim}: lo {lo} > hi {hi}")
            }
            TsunamiError::Build(msg) => write!(f, "index build error: {msg}"),
            TsunamiError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for TsunamiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TsunamiError::DimensionMismatch {
            expected: 4,
            got: 7,
        };
        assert!(e.to_string().contains("expected 4"));
        assert!(e.to_string().contains("got 7"));

        let e = TsunamiError::InvalidPredicate {
            dim: 2,
            lo: 10,
            hi: 3,
        };
        assert!(e.to_string().contains("dim 2"));

        assert!(TsunamiError::EmptyDataset.to_string().contains("no rows"));
        assert!(TsunamiError::Build("boom".into())
            .to_string()
            .contains("boom"));
        assert!(TsunamiError::Config("bad".into())
            .to_string()
            .contains("bad"));
        assert!(TsunamiError::EmptyWorkload.to_string().contains("queries"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(TsunamiError::EmptyDataset, TsunamiError::EmptyDataset);
        assert_ne!(
            TsunamiError::EmptyDataset,
            TsunamiError::Build("x".to_string())
        );
    }
}
