//! The common interface implemented by every multi-dimensional index in the
//! workspace, learned or not.
//!
//! The benchmark harness treats all indexes uniformly through this trait: it
//! builds them from a [`crate::Dataset`] and a sample [`crate::Workload`],
//! executes queries, and reports index size and build-time breakdowns
//! (Fig 8 and Fig 9b of the paper).

use crate::query::{AggResult, Query};

/// Wall-clock breakdown of building an index (Fig 9b): every index must sort
/// (reorganize) the data according to its layout, and learned indexes
/// additionally spend time optimizing the layout.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BuildTiming {
    /// Seconds spent physically reordering the data.
    pub sort_secs: f64,
    /// Seconds spent optimizing the layout (zero for non-learned indexes).
    pub optimize_secs: f64,
}

impl BuildTiming {
    /// Total build time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.sort_secs + self.optimize_secs
    }
}

/// Diagnostic counters describing how an index executed a query. Used to
/// validate the cost model (Fig 12b) and to explain performance differences.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IndexStats {
    /// Number of contiguous physical ranges scanned.
    pub ranges_scanned: usize,
    /// Number of points scanned (visited), matching or not.
    pub points_scanned: usize,
    /// Number of points that matched all predicates.
    pub points_matched: usize,
}

/// A clustered in-memory multi-dimensional index over a single table.
///
/// Implementations own their (re-organized) copy of the data, so `execute`
/// needs only the query.
pub trait MultiDimIndex {
    /// Short human-readable name used in benchmark output (e.g. `"Tsunami"`).
    fn name(&self) -> &str;

    /// Executes a query and returns its aggregation result.
    fn execute(&self, query: &Query) -> AggResult;

    /// Executes a query while collecting diagnostic counters.
    ///
    /// The default implementation runs [`MultiDimIndex::execute`] and reports
    /// empty stats; indexes that can cheaply count scanned ranges/points
    /// should override it.
    fn execute_with_stats(&self, query: &Query) -> (AggResult, IndexStats) {
        (self.execute(query), IndexStats::default())
    }

    /// Size of the index structure in bytes, excluding the data itself
    /// (Fig 8 reports index size, not data size).
    fn size_bytes(&self) -> usize;

    /// Build-time breakdown recorded while constructing the index (Fig 9b).
    fn build_timing(&self) -> BuildTiming;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{AggAccumulator, Aggregation};

    /// A trivial index used to exercise the trait's default methods.
    struct Dummy;

    impl MultiDimIndex for Dummy {
        fn name(&self) -> &str {
            "dummy"
        }
        fn execute(&self, _query: &Query) -> AggResult {
            AggAccumulator::new(Aggregation::Count).finish()
        }
        fn size_bytes(&self) -> usize {
            0
        }
        fn build_timing(&self) -> BuildTiming {
            BuildTiming {
                sort_secs: 1.0,
                optimize_secs: 2.0,
            }
        }
    }

    #[test]
    fn build_timing_totals() {
        let d = Dummy;
        assert_eq!(d.build_timing().total_secs(), 3.0);
    }

    #[test]
    fn default_execute_with_stats_reports_empty_stats() {
        let d = Dummy;
        let q = Query::count(vec![]).unwrap();
        let (res, stats) = d.execute_with_stats(&q);
        assert_eq!(res, AggResult::Count(0));
        assert_eq!(stats, IndexStats::default());
    }
}
