//! The common interface implemented by every multi-dimensional index in the
//! workspace, learned or not.
//!
//! The benchmark harness treats all indexes uniformly through this trait: it
//! builds them from a [`crate::Dataset`] and a sample [`crate::Workload`],
//! executes queries, and reports index size and build-time breakdowns
//! (Fig 8 and Fig 9b of the paper).
//!
//! Query execution is *not* implemented per index. An index only answers
//! [`MultiDimIndex::plan`] — which contiguous physical ranges to scan, with
//! the §6.1 exact-range flags — and exposes its reordered data through
//! [`MultiDimIndex::source`]; the provided [`MultiDimIndex::execute`],
//! [`MultiDimIndex::execute_with_stats`], and
//! [`MultiDimIndex::execute_parallel`] methods run every plan through the
//! shared vectorized executor in [`crate::exec`].

use crate::exec::{self, KernelTier, ScanCounters, ScanPlan, ScanSource};
use crate::query::{AggResult, Query};

/// Wall-clock breakdown of building an index (Fig 9b): every index must sort
/// (reorganize) the data according to its layout, and learned indexes
/// additionally spend time optimizing the layout.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BuildTiming {
    /// Seconds spent physically reordering the data.
    pub sort_secs: f64,
    /// Seconds spent optimizing the layout (zero for non-learned indexes).
    pub optimize_secs: f64,
}

impl BuildTiming {
    /// Total build time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.sort_secs + self.optimize_secs
    }
}

/// Diagnostic counters describing how an index executed a query. Used to
/// validate the cost model (Fig 12b) and to explain performance differences.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IndexStats {
    /// Number of contiguous physical ranges scanned.
    pub ranges_scanned: usize,
    /// Number of points scanned (visited), matching or not.
    pub points_scanned: usize,
    /// Number of points that matched all predicates.
    pub points_matched: usize,
}

impl From<ScanCounters> for IndexStats {
    fn from(c: ScanCounters) -> Self {
        Self {
            ranges_scanned: c.ranges,
            points_scanned: c.points,
            points_matched: c.matched,
        }
    }
}

/// A clustered in-memory multi-dimensional index over a single table.
///
/// Implementations own their (re-organized) copy of the data, so planning
/// needs only the query. Execution is provided: implement [`Self::plan`] and
/// [`Self::source`] and the shared executor does the rest.
pub trait MultiDimIndex {
    /// Short human-readable name used in benchmark output (e.g. `"Tsunami"`).
    fn name(&self) -> &str;

    /// The physical data the index's plans scan (its clustered copy).
    fn source(&self) -> &dyn ScanSource;

    /// Plans a query: the ordered contiguous physical ranges to scan, with
    /// per-range exactness flags (and optionally residual predicates). This
    /// is the only query-time logic an index implements.
    fn plan(&self, query: &Query) -> ScanPlan;

    /// Executes a query through the shared vectorized executor.
    fn execute(&self, query: &Query) -> AggResult {
        exec::execute_plan(self.source(), query, &self.plan(query)).0
    }

    /// Executes a query while collecting diagnostic counters from the
    /// executor.
    fn execute_with_stats(&self, query: &Query) -> (AggResult, IndexStats) {
        let (result, counters) = exec::execute_plan(self.source(), query, &self.plan(query));
        (result, counters.into())
    }

    /// Executes a query with the parallel executor: the plan is decomposed
    /// into cache-resident morsels claimed by up to `threads` workers of the
    /// process-wide work-stealing pool ([`exec::pool`]) — no threads are
    /// spawned per call. Results and counters are bit-identical to
    /// [`Self::execute_with_stats`].
    fn execute_parallel(&self, query: &Query, threads: usize) -> (AggResult, IndexStats) {
        let (result, counters) =
            exec::execute_plan_parallel(self.source(), query, &self.plan(query), threads);
        (result, counters.into())
    }

    /// Executes a query with an explicitly pinned [`KernelTier`]. All tiers
    /// are bit-identical in results and counters (see the
    /// [`exec`] module docs); benchmarks and differential tests
    /// use this to compare them.
    fn execute_tiered(&self, query: &Query, tier: KernelTier) -> (AggResult, IndexStats) {
        let (result, counters) =
            exec::execute_plan_tiered(self.source(), query, &self.plan(query), tier);
        (result, counters.into())
    }

    /// [`Self::execute_tiered`] through the parallel executor.
    fn execute_parallel_tiered(
        &self,
        query: &Query,
        threads: usize,
        tier: KernelTier,
    ) -> (AggResult, IndexStats) {
        let (result, counters) = exec::execute_plan_parallel_tiered(
            self.source(),
            query,
            &self.plan(query),
            threads,
            tier,
        );
        (result, counters.into())
    }

    /// Size of the index structure in bytes, excluding the data itself
    /// (Fig 8 reports index size, not data size).
    fn size_bytes(&self) -> usize;

    /// Build-time breakdown recorded while constructing the index (Fig 9b).
    fn build_timing(&self) -> BuildTiming;

    /// Downcast hook for capabilities beyond this trait (e.g. the engine's
    /// incremental re-optimization path, which needs the concrete Tsunami
    /// index behind a `Box<dyn MultiDimIndex>`). Indexes with such
    /// capabilities override this to return `Some(self)`; the default opts
    /// out, so plain indexes need no boilerplate.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::query::{AggResult, Predicate};

    /// A trivial index (plain full scan over a small dataset) used to
    /// exercise the trait's provided methods.
    struct Dummy {
        data: Dataset,
    }

    impl Dummy {
        fn new() -> Self {
            Self {
                data: Dataset::from_columns(vec![(0..100u64).collect()]).unwrap(),
            }
        }
    }

    impl MultiDimIndex for Dummy {
        fn name(&self) -> &str {
            "dummy"
        }
        fn source(&self) -> &dyn ScanSource {
            &self.data
        }
        fn plan(&self, _query: &Query) -> ScanPlan {
            ScanPlan::full(self.data.len())
        }
        fn size_bytes(&self) -> usize {
            0
        }
        fn build_timing(&self) -> BuildTiming {
            BuildTiming {
                sort_secs: 1.0,
                optimize_secs: 2.0,
            }
        }
    }

    #[test]
    fn build_timing_totals() {
        let d = Dummy::new();
        assert_eq!(d.build_timing().total_secs(), 3.0);
    }

    #[test]
    fn provided_execute_runs_the_plan() {
        let d = Dummy::new();
        let q = Query::count(vec![Predicate::range(0, 10, 19).unwrap()]).unwrap();
        assert_eq!(d.execute(&q), AggResult::Count(10));
        let (res, stats) = d.execute_with_stats(&q);
        assert_eq!(res, AggResult::Count(10));
        assert_eq!(stats.ranges_scanned, 1);
        assert_eq!(stats.points_scanned, 100);
        assert_eq!(stats.points_matched, 10);
        let (res, pstats) = d.execute_parallel(&q, 4);
        assert_eq!(res, AggResult::Count(10));
        assert_eq!(pstats, stats);
    }
}
