//! Z-order (Morton order) index baseline (§6.1, baseline 2).
//!
//! Points are ordered by their Z-value — the bit-interleaving of the
//! normalized per-dimension values — and contiguous chunks are grouped into
//! pages. Pages maintain min/max metadata per dimension, which allows queries
//! to skip irrelevant pages. Given a query, the index finds the smallest and
//! largest Z-value contained in the query rectangle and iterates through each
//! page whose Z-range overlaps it.

use std::time::Instant;

use tsunami_core::{
    BuildTiming, Dataset, MultiDimIndex, Query, ScanPlan, ScanSource, Value, Workload,
};
use tsunami_store::ColumnStore;

/// Per-page metadata: physical range, Z-value range, and per-dimension
/// bounding box.
#[derive(Debug, Clone)]
struct Page {
    start: usize,
    end: usize,
    z_min: u64,
    z_max: u64,
    bbox: Vec<(Value, Value)>,
}

/// A clustered Z-order index.
#[derive(Debug)]
pub struct ZOrderIndex {
    store: ColumnStore,
    pages: Vec<Page>,
    /// Per-dimension (min, domain width) used to normalize values.
    domains: Vec<(Value, Value)>,
    bits_per_dim: u32,
    timing: BuildTiming,
    page_size: usize,
}

/// Interleaves the low `bits` bits of each coordinate into a Morton code.
/// Dimension 0 occupies the most significant bit of each group.
pub fn morton_encode(coords: &[u64], bits: u32) -> u64 {
    let d = coords.len() as u32;
    let mut z = 0u64;
    for bit in (0..bits).rev() {
        for (i, &c) in coords.iter().enumerate() {
            z <<= 1;
            z |= (c >> bit) & 1;
            // Guard against exceeding 64 bits (caller sizes bits * d <= 64).
            let _ = i;
        }
    }
    debug_assert!(bits * d <= 64);
    z
}

/// Inverse of [`morton_encode`]: recovers the per-dimension coordinates.
pub fn morton_decode(z: u64, dims: usize, bits: u32) -> Vec<u64> {
    let mut coords = vec![0u64; dims];
    let total = bits * dims as u32;
    for pos in 0..total {
        let bit = (z >> (total - 1 - pos)) & 1;
        let dim = (pos % dims as u32) as usize;
        coords[dim] = (coords[dim] << 1) | bit;
    }
    coords
}

impl ZOrderIndex {
    /// Builds a Z-order index with the given page size. The workload argument
    /// is unused (Z-order is data-only) but kept for interface uniformity.
    pub fn build(data: &Dataset, _workload: &Workload, page_size: usize) -> Self {
        let start_t = Instant::now();
        let d = data.num_dims().max(1);
        let bits_per_dim = (64 / d as u32).clamp(1, 16);
        let domains: Vec<(Value, Value)> = (0..data.num_dims())
            .map(|dim| {
                let (lo, hi) = data.domain(dim).unwrap_or((0, 0));
                (lo, (hi - lo).max(1))
            })
            .collect();

        let page_size = page_size.max(1);
        let mut keyed: Vec<(u64, usize)> = (0..data.len())
            .map(|r| {
                let coords: Vec<u64> = (0..data.num_dims())
                    .map(|dim| normalize(data.get(r, dim), domains[dim], bits_per_dim))
                    .collect();
                (morton_encode(&coords, bits_per_dim), r)
            })
            .collect();
        keyed.sort_unstable();
        let perm: Vec<usize> = keyed.iter().map(|&(_, r)| r).collect();

        // Build pages over the sorted order.
        let mut pages = Vec::with_capacity(data.len() / page_size + 1);
        let mut i = 0usize;
        while i < keyed.len() {
            let end = (i + page_size).min(keyed.len());
            let mut bbox = vec![(Value::MAX, Value::MIN); data.num_dims()];
            for &(_, r) in &keyed[i..end] {
                for (dim, b) in bbox.iter_mut().enumerate() {
                    let v = data.get(r, dim);
                    b.0 = b.0.min(v);
                    b.1 = b.1.max(v);
                }
            }
            pages.push(Page {
                start: i,
                end,
                z_min: keyed[i].0,
                z_max: keyed[end - 1].0,
                bbox,
            });
            i = end;
        }

        let mut store = ColumnStore::from_dataset(data);
        store.permute(&perm);
        store.encode_blocks();
        Self {
            store,
            pages,
            domains,
            bits_per_dim,
            timing: BuildTiming {
                sort_secs: start_t.elapsed().as_secs_f64(),
                optimize_secs: 0.0,
            },
            page_size,
        }
    }

    /// Number of pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Page size the index was built with.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    fn z_of_corner(&self, corner: &[Value]) -> u64 {
        let coords: Vec<u64> = corner
            .iter()
            .enumerate()
            .map(|(dim, &v)| normalize(v, self.domains[dim], self.bits_per_dim))
            .collect();
        morton_encode(&coords, self.bits_per_dim)
    }
}

fn normalize(v: Value, (lo, width): (Value, Value), bits: u32) -> u64 {
    let clamped = v.max(lo) - lo;
    let frac = (clamped as u128).min(width as u128);
    let buckets = (1u128 << bits) - 1;
    (frac * buckets / width as u128) as u64
}

impl MultiDimIndex for ZOrderIndex {
    fn name(&self) -> &str {
        "ZOrder"
    }

    fn source(&self) -> &dyn ScanSource {
        &self.store
    }

    fn plan(&self, query: &Query) -> ScanPlan {
        let d = self.store.num_dims();
        // Z-range of the query rectangle: the Z-value of the lower corner is
        // a lower bound and of the upper corner an upper bound for the
        // Z-values of all contained points.
        let z_lo = self.z_of_corner(&query.lower_corner(d));
        let z_hi = self.z_of_corner(&query.upper_corner(d));

        let mut plan = ScanPlan::new();
        // Residual elimination: a predicate stays only if some planned
        // non-exact page's bounding box sticks out of its value range.
        let mut guaranteed = vec![true; d];
        for page in &self.pages {
            if page.z_max < z_lo || page.z_min > z_hi {
                continue;
            }
            // Per-dimension min/max pruning.
            let mut intersects = true;
            let mut contained = true;
            for p in query.predicates() {
                let (lo, hi) = page.bbox[p.dim];
                if hi < p.lo || lo > p.hi {
                    intersects = false;
                    break;
                }
                if lo < p.lo || hi > p.hi {
                    contained = false;
                }
            }
            if intersects {
                if !contained {
                    for p in query.predicates() {
                        let (lo, hi) = page.bbox[p.dim];
                        guaranteed[p.dim] &= p.lo <= lo && hi <= p.hi;
                    }
                }
                // Physically adjacent pages of equal exactness merge in the
                // plan automatically.
                plan.push(page.start..page.end, contained);
            }
        }
        plan.with_guaranteed_dims(query, &guaranteed)
    }

    fn size_bytes(&self) -> usize {
        self.pages.len()
            * (2 * std::mem::size_of::<usize>()
                + 2 * std::mem::size_of::<u64>()
                + self.store.num_dims() * 2 * std::mem::size_of::<Value>())
            + self.domains.len() * 2 * std::mem::size_of::<Value>()
    }

    fn build_timing(&self) -> BuildTiming {
        self.timing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::sample::SplitMix;
    use tsunami_core::{AggResult, Predicate};

    #[test]
    fn morton_encode_decode_round_trips() {
        for &(a, b) in &[(0u64, 0u64), (5, 9), (255, 0), (123, 231), (255, 255)] {
            let z = morton_encode(&[a, b], 8);
            assert_eq!(morton_decode(z, 2, 8), vec![a, b]);
        }
        // 3 dimensions.
        let z = morton_encode(&[1, 2, 3], 4);
        assert_eq!(morton_decode(z, 3, 4), vec![1, 2, 3]);
    }

    #[test]
    fn morton_order_preserves_locality_bounds() {
        // Z-value of a point inside a rectangle lies between the Z-values of
        // the rectangle's corners.
        let lo = morton_encode(&[4, 4], 8);
        let hi = morton_encode(&[7, 7], 8);
        for x in 4..=7u64 {
            for y in 4..=7u64 {
                let z = morton_encode(&[x, y], 8);
                assert!(z >= lo && z <= hi);
            }
        }
    }

    fn data(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = SplitMix::new(seed);
        Dataset::from_columns(
            (0..d)
                .map(|_| (0..n).map(|_| rng.next_below(50_000)).collect())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn zorder_matches_full_scan_oracle() {
        let ds = data(5_000, 3, 41);
        let idx = ZOrderIndex::build(&ds, &Workload::default(), 128);
        let mut rng = SplitMix::new(42);
        for _ in 0..25 {
            let dim = rng.next_below(3) as usize;
            let lo = rng.next_below(45_000);
            let q = Query::count(vec![Predicate::range(dim, lo, lo + 4_000).unwrap()]).unwrap();
            assert_eq!(idx.execute(&q), q.execute_full_scan(&ds));
        }
        // Multi-dim query.
        let q = Query::count(vec![
            Predicate::range(0, 0, 25_000).unwrap(),
            Predicate::range(1, 10_000, 30_000).unwrap(),
        ])
        .unwrap();
        assert_eq!(idx.execute(&q), q.execute_full_scan(&ds));
    }

    #[test]
    fn small_rectangles_skip_most_pages() {
        let ds = data(20_000, 2, 43);
        let idx = ZOrderIndex::build(&ds, &Workload::default(), 128);
        let q = Query::count(vec![
            Predicate::range(0, 1_000, 3_000).unwrap(),
            Predicate::range(1, 1_000, 3_000).unwrap(),
        ])
        .unwrap();
        let (res, stats) = idx.execute_with_stats(&q);
        assert_eq!(res, q.execute_full_scan(&ds));
        assert!(
            stats.points_scanned < ds.len() / 2,
            "scanned {} of {}",
            stats.points_scanned,
            ds.len()
        );
    }

    #[test]
    fn pages_respect_page_size() {
        let ds = data(1_000, 2, 44);
        let idx = ZOrderIndex::build(&ds, &Workload::default(), 100);
        assert_eq!(idx.num_pages(), 10);
        assert_eq!(idx.page_size(), 100);
        assert!(idx.size_bytes() > 0);
        assert_eq!(idx.name(), "ZOrder");
    }

    #[test]
    fn many_dimensions_are_supported() {
        let ds = data(1_000, 8, 45);
        let idx = ZOrderIndex::build(&ds, &Workload::default(), 64);
        let q = Query::count(vec![Predicate::range(5, 0, 25_000).unwrap()]).unwrap();
        assert_eq!(idx.execute(&q), q.execute_full_scan(&ds));
    }

    #[test]
    fn constant_column_does_not_break_normalization() {
        let ds = Dataset::from_columns(vec![vec![7u64; 500], (0..500u64).collect()]).unwrap();
        let idx = ZOrderIndex::build(&ds, &Workload::default(), 50);
        let q = Query::count(vec![Predicate::eq(0, 7)]).unwrap();
        assert_eq!(idx.execute(&q), AggResult::Count(500));
    }
}
