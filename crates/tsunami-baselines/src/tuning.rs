//! Page-size tuning for the non-learned baselines.
//!
//! The paper tunes the page size of each traditional index to achieve its
//! best performance on each dataset/workload (§6.3: "we tuned the page size
//! to achieve best performance"), so the learned-vs-non-learned comparison is
//! against *optimally tuned* baselines. This module reproduces that tuning by
//! building the index at several page sizes and measuring the actual average
//! query latency over the sample workload.

use std::time::Instant;

use tsunami_core::{Dataset, MultiDimIndex, Workload};

/// The default grid of candidate page sizes.
pub const DEFAULT_PAGE_SIZES: &[usize] = &[64, 256, 1024, 4096, 16384];

/// Result of tuning: the winning page size and the measured average query
/// latency (seconds) for every candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningResult {
    /// The page size with the lowest measured average query latency.
    pub best_page_size: usize,
    /// `(page_size, average_query_seconds)` for every candidate tried.
    pub measurements: Vec<(usize, f64)>,
}

/// Tunes the page size of an index family by building it at each candidate
/// page size and measuring average query latency on the workload.
///
/// `build` constructs the index for a given page size. Returns the tuning
/// result; the caller typically rebuilds the index at `best_page_size` (or
/// keeps the last built one).
pub fn tune_page_size<I, F>(
    data: &Dataset,
    workload: &Workload,
    candidates: &[usize],
    mut build: F,
) -> TuningResult
where
    I: MultiDimIndex,
    F: FnMut(&Dataset, &Workload, usize) -> I,
{
    assert!(
        !candidates.is_empty(),
        "need at least one candidate page size"
    );
    let mut measurements = Vec::with_capacity(candidates.len());
    let mut best = (candidates[0], f64::INFINITY);
    for &page_size in candidates {
        let index = build(data, workload, page_size);
        let avg = measure_average_latency(&index, workload);
        measurements.push((page_size, avg));
        if avg < best.1 {
            best = (page_size, avg);
        }
    }
    TuningResult {
        best_page_size: best.0,
        measurements,
    }
}

/// Measures the average per-query latency (seconds) of an index over a
/// workload.
pub fn measure_average_latency<I: MultiDimIndex>(index: &I, workload: &Workload) -> f64 {
    if workload.is_empty() {
        return 0.0;
    }
    let start = Instant::now();
    for q in workload.queries() {
        std::hint::black_box(index.execute(q));
    }
    start.elapsed().as_secs_f64() / workload.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdtree::KdTree;
    use tsunami_core::sample::SplitMix;
    use tsunami_core::{Predicate, Query};

    fn data(n: usize) -> Dataset {
        let mut rng = SplitMix::new(61);
        Dataset::from_columns(vec![
            (0..n).map(|_| rng.next_below(10_000)).collect(),
            (0..n).map(|_| rng.next_below(10_000)).collect(),
        ])
        .unwrap()
    }

    fn workload() -> Workload {
        let mut rng = SplitMix::new(62);
        Workload::new(
            (0..10)
                .map(|_| {
                    let lo = rng.next_below(9_000);
                    Query::count(vec![Predicate::range(0, lo, lo + 500).unwrap()]).unwrap()
                })
                .collect(),
        )
    }

    #[test]
    fn tuning_tries_every_candidate_and_picks_a_winner() {
        let ds = data(3_000);
        let w = workload();
        let result = tune_page_size(&ds, &w, &[64, 512, 2048], |d, wl, ps| {
            KdTree::build(d, wl, ps)
        });
        assert_eq!(result.measurements.len(), 3);
        assert!([64, 512, 2048].contains(&result.best_page_size));
        let best_measure = result
            .measurements
            .iter()
            .find(|(p, _)| *p == result.best_page_size)
            .unwrap()
            .1;
        assert!(result.measurements.iter().all(|&(_, m)| m >= best_measure));
    }

    #[test]
    fn latency_measurement_is_positive_for_real_work() {
        let ds = data(2_000);
        let w = workload();
        let tree = KdTree::build(&ds, &w, 256);
        assert!(measure_average_latency(&tree, &w) > 0.0);
        assert_eq!(measure_average_latency(&tree, &Workload::default()), 0.0);
    }
}
