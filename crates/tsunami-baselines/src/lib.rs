//! Traditional, non-learned multi-dimensional indexes used as baselines in
//! the paper's evaluation (§6.1):
//!
//! * [`ClusteredSingleDimIndex`] — points sorted by the workload's most
//!   selective dimension, binary-searched when that dimension is filtered.
//! * [`ZOrderIndex`] — points ordered by Morton (Z-order) value, grouped into
//!   pages carrying per-dimension min/max metadata for skipping.
//! * [`HyperOctree`] — recursive equal subdivision of space into
//!   hyperoctants until pages are small enough.
//! * [`KdTree`] — recursive median splits, dimensions chosen round-robin in
//!   order of workload selectivity.
//! * [`FullScanIndex`] — the trivial baseline that scans everything.
//!
//! All of them are *clustered*: they reorder the column store according to
//! their layout and answer queries by scanning contiguous row ranges, exactly
//! like the learned indexes, so comparisons isolate the layout quality.
//!
//! The paper tunes the page size of the tree-based baselines per
//! dataset/workload; [`tuning::tune_page_size`] reproduces that step.

pub mod fullscan;
pub mod kdtree;
pub mod octree;
pub mod single_dim;
pub mod tuning;
pub mod zorder;

pub use fullscan::FullScanIndex;
pub use kdtree::KdTree;
pub use octree::HyperOctree;
pub use single_dim::ClusteredSingleDimIndex;
pub use tuning::{tune_page_size, DEFAULT_PAGE_SIZES};
pub use zorder::ZOrderIndex;
