//! Clustered k-d tree baseline (§2.1, §6.1 baseline 4).
//!
//! The k-d tree recursively partitions space using the median value along
//! each dimension until the number of points in each leaf falls below the
//! page size. Dimensions are selected round-robin, ordered by workload
//! selectivity (most selective first), matching the paper's tuned setup.
//! Points within each leaf are stored contiguously.

use std::time::Instant;

use tsunami_core::{
    BuildTiming, Dataset, MultiDimIndex, Query, ScanPlan, ScanSource, Value, Workload,
};
use tsunami_store::ColumnStore;

#[derive(Debug)]
enum Node {
    Internal {
        dim: usize,
        split: Value,
        left: Box<Node>,
        right: Box<Node>,
    },
    Leaf {
        start: usize,
        end: usize,
        /// Per-dimension (min, max) bounding box of the leaf's points.
        bbox: Vec<(Value, Value)>,
    },
}

/// A clustered k-d tree over the column store.
#[derive(Debug)]
pub struct KdTree {
    root: Node,
    store: ColumnStore,
    num_leaves: usize,
    num_nodes: usize,
    timing: BuildTiming,
    page_size: usize,
}

impl KdTree {
    /// Orders dimensions by workload selectivity (most selective first);
    /// dimensions never filtered come last.
    pub fn dimension_order(data: &Dataset, workload: &Workload) -> Vec<usize> {
        let d = data.num_dims();
        let mut scored: Vec<(usize, f64)> = (0..d)
            .map(|dim| {
                let mut sel_sum = 0.0;
                let mut count = 0usize;
                for q in workload.queries() {
                    if q.predicate_on(dim).is_some() {
                        sel_sum += q.dim_selectivity(data, dim);
                        count += 1;
                    }
                }
                let score = if count == 0 {
                    f64::INFINITY
                } else {
                    sel_sum / count as f64
                };
                (dim, score)
            })
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.into_iter().map(|(dim, _)| dim).collect()
    }

    /// Builds a k-d tree with the given page size, cycling through dimensions
    /// in workload-selectivity order.
    pub fn build(data: &Dataset, workload: &Workload, page_size: usize) -> Self {
        let dim_order = Self::dimension_order(data, workload);
        Self::build_with_order(data, &dim_order, page_size)
    }

    /// Builds a k-d tree cycling through an explicit dimension order.
    pub fn build_with_order(data: &Dataset, dim_order: &[usize], page_size: usize) -> Self {
        let start_t = Instant::now();
        let page_size = page_size.max(1);
        let mut rows: Vec<usize> = (0..data.len()).collect();
        let mut perm: Vec<usize> = Vec::with_capacity(data.len());
        let mut num_leaves = 0usize;
        let mut num_nodes = 0usize;
        let root = Self::build_node(
            data,
            &mut rows,
            dim_order,
            0,
            page_size,
            &mut perm,
            &mut num_leaves,
            &mut num_nodes,
        );
        let mut store = ColumnStore::from_dataset(data);
        store.permute(&perm);
        store.encode_blocks();
        Self {
            root,
            store,
            num_leaves,
            num_nodes,
            timing: BuildTiming {
                sort_secs: start_t.elapsed().as_secs_f64(),
                optimize_secs: 0.0,
            },
            page_size,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_node(
        data: &Dataset,
        rows: &mut [usize],
        dim_order: &[usize],
        depth: usize,
        page_size: usize,
        perm: &mut Vec<usize>,
        num_leaves: &mut usize,
        num_nodes: &mut usize,
    ) -> Node {
        *num_nodes += 1;
        let dim = dim_order[depth % dim_order.len()];
        // Stop when the page is small enough or no split is possible.
        let make_leaf = rows.len() <= page_size || {
            // All values equal in every dimension -> cannot split.
            dim_order.iter().all(|&d| {
                let first = data.get(rows[0], d);
                rows.iter().all(|&r| data.get(r, d) == first)
            })
        };
        if make_leaf {
            *num_leaves += 1;
            let start = perm.len();
            let bbox = (0..data.num_dims())
                .map(|d| {
                    let mut lo = Value::MAX;
                    let mut hi = Value::MIN;
                    for &r in rows.iter() {
                        let v = data.get(r, d);
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                    if rows.is_empty() {
                        (0, 0)
                    } else {
                        (lo, hi)
                    }
                })
                .collect();
            perm.extend_from_slice(rows);
            return Node::Leaf {
                start,
                end: perm.len(),
                bbox,
            };
        }

        // Median split along `dim`; fall back to the next dimension if this
        // one cannot separate the points.
        rows.sort_by_key(|&r| data.get(r, dim));
        let mid = rows.len() / 2;
        let split = data.get(rows[mid], dim);
        // Ensure both sides are non-empty by putting strictly-less values on
        // the left; if everything equals the split value, move the boundary.
        let mut boundary = rows.partition_point_by(|&r| data.get(r, dim) < split);
        if boundary == 0 || boundary == rows.len() {
            boundary = mid.max(1).min(rows.len() - 1);
        }
        let (left_rows, right_rows) = rows.split_at_mut(boundary);
        let left = Self::build_node(
            data,
            left_rows,
            dim_order,
            depth + 1,
            page_size,
            perm,
            num_leaves,
            num_nodes,
        );
        let right = Self::build_node(
            data,
            right_rows,
            dim_order,
            depth + 1,
            page_size,
            perm,
            num_leaves,
            num_nodes,
        );
        Node::Internal {
            dim,
            split,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Number of leaf pages.
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// Total number of tree nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Page size the tree was built with.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    fn collect_ranges(
        &self,
        node: &Node,
        query: &Query,
        plan: &mut ScanPlan,
        guaranteed: &mut [bool],
    ) {
        match node {
            Node::Leaf { start, end, bbox } => {
                if *start == *end {
                    return;
                }
                // Prune leaves whose bbox misses the query; mark exact leaves
                // whose bbox is fully inside the query.
                let mut intersects = true;
                let mut contained = true;
                for p in query.predicates() {
                    let (lo, hi) = bbox[p.dim];
                    if hi < p.lo || lo > p.hi {
                        intersects = false;
                        break;
                    }
                    if lo < p.lo || hi > p.hi {
                        contained = false;
                    }
                }
                if intersects {
                    if !contained {
                        for p in query.predicates() {
                            let (lo, hi) = bbox[p.dim];
                            guaranteed[p.dim] &= p.lo <= lo && hi <= p.hi;
                        }
                    }
                    plan.push(*start..*end, contained);
                }
            }
            Node::Internal {
                dim,
                split,
                left,
                right,
            } => {
                match query.predicate_on(*dim) {
                    None => {
                        self.collect_ranges(left, query, plan, guaranteed);
                        self.collect_ranges(right, query, plan, guaranteed);
                    }
                    Some(pred) => {
                        // Left subtree holds values < split, right holds >= split.
                        if pred.lo < *split {
                            self.collect_ranges(left, query, plan, guaranteed);
                        }
                        if pred.hi >= *split {
                            self.collect_ranges(right, query, plan, guaranteed);
                        }
                    }
                }
            }
        }
    }
}

/// Extension trait providing `partition_point_by` over mutable slices of rows.
trait PartitionPointBy {
    fn partition_point_by<F: Fn(&usize) -> bool>(&self, pred: F) -> usize;
}

impl PartitionPointBy for [usize] {
    fn partition_point_by<F: Fn(&usize) -> bool>(&self, pred: F) -> usize {
        let mut count = 0;
        for r in self {
            if pred(r) {
                count += 1;
            } else {
                break;
            }
        }
        count
    }
}

impl MultiDimIndex for KdTree {
    fn name(&self) -> &str {
        "KdTree"
    }

    fn source(&self) -> &dyn ScanSource {
        &self.store
    }

    fn plan(&self, query: &Query) -> ScanPlan {
        let mut plan = ScanPlan::new();
        let mut guaranteed = vec![true; self.store.num_dims()];
        self.collect_ranges(&self.root, query, &mut plan, &mut guaranteed);
        plan.with_guaranteed_dims(query, &guaranteed)
    }

    fn size_bytes(&self) -> usize {
        // Internal node: dim + split + 2 pointers; leaf: range + bbox.
        let internal = self.num_nodes - self.num_leaves;
        internal * (std::mem::size_of::<usize>() + std::mem::size_of::<Value>() + 2 * 8)
            + self.num_leaves
                * (2 * std::mem::size_of::<usize>()
                    + self.store.num_dims() * 2 * std::mem::size_of::<Value>())
    }

    fn build_timing(&self) -> BuildTiming {
        self.timing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::sample::SplitMix;
    use tsunami_core::{AggResult, Predicate};

    fn data(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = SplitMix::new(seed);
        Dataset::from_columns(
            (0..d)
                .map(|_| (0..n).map(|_| rng.next_below(100_000)).collect())
                .collect(),
        )
        .unwrap()
    }

    fn workload(d: usize, n: usize, seed: u64) -> Workload {
        let mut rng = SplitMix::new(seed);
        Workload::new(
            (0..n)
                .map(|_| {
                    let dim = rng.next_below(d as u64) as usize;
                    let lo = rng.next_below(90_000);
                    Query::count(vec![Predicate::range(dim, lo, lo + 5_000).unwrap()]).unwrap()
                })
                .collect(),
        )
    }

    #[test]
    fn kdtree_matches_full_scan_oracle() {
        let ds = data(4_000, 3, 31);
        let w = workload(3, 25, 32);
        let tree = KdTree::build(&ds, &w, 64);
        for q in w.queries() {
            assert_eq!(tree.execute(q), q.execute_full_scan(&ds));
        }
        // Multi-dimensional query.
        let q = Query::count(vec![
            Predicate::range(0, 0, 40_000).unwrap(),
            Predicate::range(2, 20_000, 80_000).unwrap(),
        ])
        .unwrap();
        assert_eq!(tree.execute(&q), q.execute_full_scan(&ds));
    }

    #[test]
    fn leaves_respect_page_size_on_distinct_data() {
        let ds = data(5_000, 2, 33);
        let w = workload(2, 5, 34);
        let tree = KdTree::build(&ds, &w, 100);
        // ~5000/100 = 50 leaves minimum; allow some slack for uneven splits.
        assert!(tree.num_leaves() >= 40, "leaves: {}", tree.num_leaves());
        assert!(tree.num_nodes() > tree.num_leaves());
        assert_eq!(tree.page_size(), 100);
    }

    #[test]
    fn pruning_scans_fewer_points_than_full_scan() {
        let ds = data(20_000, 2, 35);
        let w = workload(2, 10, 36);
        let tree = KdTree::build(&ds, &w, 256);
        let q = Query::count(vec![
            Predicate::range(0, 0, 10_000).unwrap(),
            Predicate::range(1, 0, 10_000).unwrap(),
        ])
        .unwrap();
        let (res, stats) = tree.execute_with_stats(&q);
        assert_eq!(res, q.execute_full_scan(&ds));
        assert!(stats.points_scanned < ds.len() / 2);
    }

    #[test]
    fn duplicate_heavy_data_does_not_loop_forever() {
        // All rows identical: the tree must terminate with a single leaf.
        let ds = Dataset::from_columns(vec![vec![7u64; 1000], vec![9u64; 1000]]).unwrap();
        let w = workload(2, 3, 37);
        let tree = KdTree::build(&ds, &w, 10);
        assert!(tree.num_leaves() >= 1);
        let q = Query::count(vec![Predicate::eq(0, 7)]).unwrap();
        assert_eq!(tree.execute(&q), AggResult::Count(1000));
    }

    #[test]
    fn dimension_order_puts_selective_dim_first() {
        let ds = data(2_000, 3, 38);
        // Workload highly selective on dim 2 only.
        let w = Workload::new(vec![
            Query::count(vec![Predicate::range(2, 0, 500).unwrap()]).unwrap(),
            Query::count(vec![Predicate::range(0, 0, 99_000).unwrap()]).unwrap(),
        ]);
        let order = KdTree::dimension_order(&ds, &w);
        assert_eq!(order[0], 2);
        // Unfiltered dim 1 comes last.
        assert_eq!(order[2], 1);
    }

    #[test]
    fn size_and_timing_are_reported() {
        let ds = data(1_000, 2, 39);
        let w = workload(2, 5, 40);
        let tree = KdTree::build(&ds, &w, 64);
        assert!(tree.size_bytes() > 0);
        assert!(tree.build_timing().sort_secs >= 0.0);
        assert_eq!(tree.build_timing().optimize_secs, 0.0);
        assert_eq!(tree.name(), "KdTree");
    }
}
