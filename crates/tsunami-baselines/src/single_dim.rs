//! Clustered single-dimensional index (§6.1, baseline 1).
//!
//! Points are sorted by the workload's most selective dimension. When a query
//! filters that dimension, the matching row range is located with binary
//! search and only that range is scanned (checking the remaining predicates);
//! otherwise the index degenerates to a full scan.

use std::time::Instant;

use tsunami_core::{
    BuildTiming, Dataset, MultiDimIndex, Query, ScanPlan, ScanSource, Value, Workload,
};
use tsunami_store::ColumnStore;

/// A clustered index sorted on a single dimension.
#[derive(Debug)]
pub struct ClusteredSingleDimIndex {
    store: ColumnStore,
    /// Sorted copy of the sort dimension's values for binary search.
    sort_keys: Vec<Value>,
    sort_dim: usize,
    /// Per-dimension `(min, max)` value bounds of the stored data, used to
    /// drop residual predicates the whole table trivially satisfies.
    domains: Vec<(Value, Value)>,
    timing: BuildTiming,
}

impl ClusteredSingleDimIndex {
    /// Picks the most selective dimension of the workload: the filtered
    /// dimension with the lowest average per-dimension selectivity.
    pub fn choose_sort_dim(data: &Dataset, workload: &Workload) -> usize {
        let d = data.num_dims();
        let mut best_dim = 0usize;
        let mut best_sel = f64::INFINITY;
        for dim in 0..d {
            let mut sel_sum = 0.0;
            let mut count = 0usize;
            for q in workload.queries() {
                if q.predicate_on(dim).is_some() {
                    sel_sum += q.dim_selectivity(data, dim);
                    count += 1;
                }
            }
            if count > 0 {
                // Weight by how often the dimension is filtered.
                let avg = sel_sum / count as f64;
                let freq = count as f64 / workload.len().max(1) as f64;
                let score = avg / freq.max(1e-6);
                if score < best_sel {
                    best_sel = score;
                    best_dim = dim;
                }
            }
        }
        best_dim
    }

    /// Builds the index sorted on the workload's most selective dimension.
    pub fn build(data: &Dataset, workload: &Workload) -> Self {
        let sort_dim = Self::choose_sort_dim(data, workload);
        Self::build_on_dim(data, sort_dim)
    }

    /// Builds the index sorted on an explicit dimension.
    pub fn build_on_dim(data: &Dataset, sort_dim: usize) -> Self {
        let start = Instant::now();
        let col = data.column(sort_dim);
        let mut perm: Vec<usize> = (0..data.len()).collect();
        perm.sort_by_key(|&r| col[r]);
        let sort_keys: Vec<Value> = perm.iter().map(|&r| col[r]).collect();
        let domains: Vec<(Value, Value)> = (0..data.num_dims())
            .map(|d| data.domain(d).unwrap_or((0, 0)))
            .collect();
        let mut store = ColumnStore::from_dataset(data);
        store.permute(&perm);
        store.encode_blocks();
        Self {
            store,
            sort_keys,
            sort_dim,
            domains,
            timing: BuildTiming {
                sort_secs: start.elapsed().as_secs_f64(),
                optimize_secs: 0.0,
            },
        }
    }

    /// Absorbs new rows **without a rebuild** — the sorted-merge ingest: the
    /// batch is appended to the store's tail and one stable
    /// [`ColumnStore::sort_range`] over the sort dimension merges it into
    /// place (the old rows are already one sorted run, so the sort
    /// degenerates to a merge). The per-dimension domains backing
    /// residual-predicate elimination are widened to cover the batch.
    pub fn ingest(&self, rows: &Dataset) -> Self {
        assert_eq!(
            rows.num_dims(),
            self.store.num_dims(),
            "ingested rows must match the index width"
        );
        let start = Instant::now();
        let mut store = self.store.clone();
        store.append_dataset(rows);
        store.sort_range(0..store.len(), self.sort_dim);
        store.encode_blocks();
        let sort_keys: Vec<Value> = store.column(self.sort_dim).decode_range(0..store.len());
        let domains: Vec<(Value, Value)> = self
            .domains
            .iter()
            .enumerate()
            .map(|(dim, &(lo, hi))| match rows.domain(dim) {
                Some((blo, bhi)) if !self.store.is_empty() => (lo.min(blo), hi.max(bhi)),
                Some(fresh) => fresh,
                None => (lo, hi),
            })
            .collect();
        Self {
            store,
            sort_keys,
            sort_dim: self.sort_dim,
            domains,
            timing: BuildTiming {
                sort_secs: start.elapsed().as_secs_f64(),
                optimize_secs: 0.0,
            },
        }
    }

    /// Whether the whole table already satisfies a predicate (its range
    /// covers the dimension's entire stored value domain), making any
    /// re-check of it redundant.
    fn covered_by_domain(&self, p: &tsunami_core::Predicate) -> bool {
        match self.domains.get(p.dim) {
            Some(&(lo, hi)) => p.lo <= lo && hi <= p.hi,
            None => false,
        }
    }

    /// The dimension the data is sorted by.
    pub fn sort_dim(&self) -> usize {
        self.sort_dim
    }
}

impl MultiDimIndex for ClusteredSingleDimIndex {
    fn name(&self) -> &str {
        "SingleDim"
    }

    fn source(&self) -> &dyn ScanSource {
        &self.store
    }

    fn plan(&self, query: &Query) -> ScanPlan {
        let on_sort_dim = query.predicate_on(self.sort_dim);
        let plan = match on_sort_dim {
            None => ScanPlan::full(self.store.len()),
            Some(pred) => {
                let start = self.sort_keys.partition_point(|&v| v < pred.lo);
                let end = self.sort_keys.partition_point(|&v| v <= pred.hi);
                // The binary search already guarantees the sort-dimension
                // predicate for every row in the range: if it is the only
                // filter the range is exact.
                ScanPlan::from_ranges([(start..end, query.num_filtered_dims() == 1)])
            }
        };
        // Residual elimination: the binary search guarantees the sort
        // dimension (when filtered), and the stored per-dimension value
        // domains guarantee any predicate covering them whole.
        let guaranteed: Vec<bool> = (0..self.store.num_dims())
            .map(|dim| {
                (dim == self.sort_dim && on_sort_dim.is_some())
                    || query
                        .predicate_on(dim)
                        .is_none_or(|p| self.covered_by_domain(p))
            })
            .collect();
        plan.with_guaranteed_dims(query, &guaranteed)
    }

    fn size_bytes(&self) -> usize {
        // The sorted key copy is the index structure.
        self.sort_keys.len() * std::mem::size_of::<Value>()
    }

    fn build_timing(&self) -> BuildTiming {
        self.timing
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        // Lets the engine's ingestion path reach
        // `ClusteredSingleDimIndex::ingest` behind a `Box<dyn MultiDimIndex>`.
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::sample::SplitMix;
    use tsunami_core::Predicate;

    fn data() -> Dataset {
        let mut rng = SplitMix::new(5);
        Dataset::from_columns(vec![
            (0..2000).map(|_| rng.next_below(1000)).collect(),
            (0..2000u64).map(|v| v % 777).collect(),
        ])
        .unwrap()
    }

    #[test]
    fn chooses_most_selective_dimension() {
        let ds = data();
        let w = Workload::new(vec![Query::count(vec![
            Predicate::range(0, 0, 900).unwrap(),
            Predicate::range(1, 10, 20).unwrap(),
        ])
        .unwrap()]);
        assert_eq!(ClusteredSingleDimIndex::choose_sort_dim(&ds, &w), 1);
    }

    #[test]
    fn matches_full_scan_on_sorted_dim_queries() {
        let ds = data();
        let idx = ClusteredSingleDimIndex::build_on_dim(&ds, 0);
        for (lo, hi) in [(0u64, 99u64), (500, 700), (990, 2000), (1500, 1600)] {
            let q = Query::count(vec![Predicate::range(0, lo, hi).unwrap()]).unwrap();
            assert_eq!(idx.execute(&q), q.execute_full_scan(&ds));
        }
    }

    #[test]
    fn matches_full_scan_on_multi_dim_and_unsorted_queries() {
        let ds = data();
        let idx = ClusteredSingleDimIndex::build_on_dim(&ds, 0);
        let q = Query::count(vec![
            Predicate::range(0, 100, 500).unwrap(),
            Predicate::range(1, 0, 300).unwrap(),
        ])
        .unwrap();
        assert_eq!(idx.execute(&q), q.execute_full_scan(&ds));
        // Query that does not filter the sort dimension -> full scan path.
        let q = Query::count(vec![Predicate::range(1, 0, 300).unwrap()]).unwrap();
        assert_eq!(idx.execute(&q), q.execute_full_scan(&ds));
    }

    #[test]
    fn sorted_dim_queries_scan_fewer_points() {
        let ds = data();
        let idx = ClusteredSingleDimIndex::build_on_dim(&ds, 0);
        let q = Query::count(vec![Predicate::range(0, 100, 150).unwrap()]).unwrap();
        let (_, stats) = idx.execute_with_stats(&q);
        assert!(stats.points_scanned < ds.len() / 2);
        let q = Query::count(vec![Predicate::range(1, 100, 150).unwrap()]).unwrap();
        let (_, stats) = idx.execute_with_stats(&q);
        assert_eq!(stats.points_scanned, ds.len());
    }

    #[test]
    fn ingest_merges_into_sort_order_and_stays_sound() {
        let ds = data();
        let idx = ClusteredSingleDimIndex::build_on_dim(&ds, 0);
        // Batch including values beyond the build-time domain of both dims.
        let batch = Dataset::from_columns(vec![
            vec![5, 500, 999, 5_000, 5_001],
            vec![1, 2, 3, 4, 5_000],
        ])
        .unwrap();
        let ingested = idx.ingest(&batch);

        let mut merged = ds.clone();
        for row in batch.rows() {
            merged.push_row(&row).unwrap();
        }
        // Sort keys stay sorted and cover every row.
        assert!(ingested.sort_keys.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(ingested.sort_keys.len(), merged.len());

        for (lo, hi) in [(0u64, 99u64), (400, 600), (990, 6_000)] {
            let q = Query::count(vec![Predicate::range(0, lo, hi).unwrap()]).unwrap();
            assert_eq!(ingested.execute(&q), q.execute_full_scan(&merged));
        }
        // Residual elimination stays sound: the old whole-domain predicate
        // no longer covers the widened domain, so it must be re-checked (the
        // result must exclude the new out-of-domain rows).
        let (old_lo, old_hi) = ds.domain(1).unwrap();
        let q = Query::count(vec![Predicate::range(1, old_lo, old_hi).unwrap()]).unwrap();
        assert_eq!(ingested.execute(&q), q.execute_full_scan(&merged));
        // And the *new* whole-domain predicate is dropped from the residual.
        let (lo, hi) = merged.domain(1).unwrap();
        let q = Query::count(vec![Predicate::range(1, lo, hi).unwrap()]).unwrap();
        let plan = ingested.plan(&q);
        assert!(plan.residual(&q).is_empty());
        assert_eq!(ingested.execute(&q), q.execute_full_scan(&merged));
    }

    #[test]
    fn build_uses_workload_to_pick_dim() {
        let ds = data();
        let w = Workload::new(vec![Query::count(
            vec![Predicate::range(1, 5, 10).unwrap()],
        )
        .unwrap()]);
        let idx = ClusteredSingleDimIndex::build(&ds, &w);
        assert_eq!(idx.sort_dim(), 1);
        assert!(idx.size_bytes() > 0);
        assert!(idx.build_timing().sort_secs >= 0.0);
        assert_eq!(idx.name(), "SingleDim");
    }
}
