//! Hyperoctree baseline (§6.1, baseline 3).
//!
//! The hyperoctree recursively subdivides space equally into hyperoctants
//! (the d-dimensional analog of 2-dimensional quadrants) until the number of
//! points in each leaf is below a tunable page size. In high dimensions a
//! node would have `2^d` children, which explodes; like practical
//! implementations we cap the number of dimensions split per level (splitting
//! the widest dimensions first) so the fan-out stays manageable.

use std::time::Instant;

use tsunami_core::{
    BuildTiming, Dataset, MultiDimIndex, Query, ScanPlan, ScanSource, Value, Workload,
};
use tsunami_store::ColumnStore;

/// Maximum number of dimensions split at a single tree level (fan-out
/// `2^MAX_SPLIT_DIMS`).
const MAX_SPLIT_DIMS: usize = 6;
/// Maximum recursion depth (guards against degenerate data).
const MAX_DEPTH: usize = 24;

#[derive(Debug)]
enum Node {
    Internal {
        /// Dimensions split at this level and their midpoints.
        split_dims: Vec<(usize, Value)>,
        children: Vec<Node>,
    },
    Leaf {
        start: usize,
        end: usize,
        bbox: Vec<(Value, Value)>,
    },
}

/// A clustered hyperoctree.
#[derive(Debug)]
pub struct HyperOctree {
    root: Node,
    store: ColumnStore,
    num_leaves: usize,
    num_nodes: usize,
    timing: BuildTiming,
    page_size: usize,
}

impl HyperOctree {
    /// Builds a hyperoctree with the given page size. The workload argument
    /// is unused (the octree is data-only) but kept for interface uniformity.
    pub fn build(data: &Dataset, _workload: &Workload, page_size: usize) -> Self {
        let start_t = Instant::now();
        let page_size = page_size.max(1);
        let mut rows: Vec<usize> = (0..data.len()).collect();
        let bounds: Vec<(Value, Value)> = (0..data.num_dims())
            .map(|d| data.domain(d).unwrap_or((0, 0)))
            .collect();
        let mut perm = Vec::with_capacity(data.len());
        let mut num_leaves = 0;
        let mut num_nodes = 0;
        let root = Self::build_node(
            data,
            &mut rows,
            &bounds,
            page_size,
            0,
            &mut perm,
            &mut num_leaves,
            &mut num_nodes,
        );
        let mut store = ColumnStore::from_dataset(data);
        store.permute(&perm);
        store.encode_blocks();
        Self {
            root,
            store,
            num_leaves,
            num_nodes,
            timing: BuildTiming {
                sort_secs: start_t.elapsed().as_secs_f64(),
                optimize_secs: 0.0,
            },
            page_size,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_node(
        data: &Dataset,
        rows: &mut Vec<usize>,
        bounds: &[(Value, Value)],
        page_size: usize,
        depth: usize,
        perm: &mut Vec<usize>,
        num_leaves: &mut usize,
        num_nodes: &mut usize,
    ) -> Node {
        *num_nodes += 1;
        // Split the widest dimensions (those that can still be halved).
        let mut widths: Vec<(usize, Value)> = bounds
            .iter()
            .enumerate()
            .map(|(d, &(lo, hi))| (d, hi.saturating_sub(lo)))
            .filter(|&(_, w)| w >= 1)
            .collect();
        widths.sort_by_key(|&(_, w)| std::cmp::Reverse(w));
        widths.truncate(MAX_SPLIT_DIMS);

        if rows.len() <= page_size || widths.is_empty() || depth >= MAX_DEPTH {
            *num_leaves += 1;
            let start = perm.len();
            let bbox = leaf_bbox(data, rows);
            perm.extend_from_slice(rows);
            return Node::Leaf {
                start,
                end: perm.len(),
                bbox,
            };
        }

        let split_dims: Vec<(usize, Value)> = widths
            .iter()
            .map(|&(d, _)| {
                let (lo, hi) = bounds[d];
                (d, lo + (hi - lo) / 2)
            })
            .collect();
        let fanout = 1usize << split_dims.len();

        // Partition rows into children.
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); fanout];
        for &r in rows.iter() {
            let mut child = 0usize;
            for (bit, &(d, mid)) in split_dims.iter().enumerate() {
                if data.get(r, d) > mid {
                    child |= 1 << bit;
                }
            }
            buckets[child].push(r);
        }
        rows.clear();

        let children: Vec<Node> = buckets
            .into_iter()
            .enumerate()
            .map(|(child, mut child_rows)| {
                // Child bounds.
                let mut child_bounds = bounds.to_vec();
                for (bit, &(d, mid)) in split_dims.iter().enumerate() {
                    if child & (1 << bit) != 0 {
                        child_bounds[d].0 = mid.saturating_add(1).max(child_bounds[d].0);
                    } else {
                        child_bounds[d].1 = mid;
                    }
                }
                Self::build_node(
                    data,
                    &mut child_rows,
                    &child_bounds,
                    page_size,
                    depth + 1,
                    perm,
                    num_leaves,
                    num_nodes,
                )
            })
            .collect();

        Node::Internal {
            split_dims,
            children,
        }
    }

    /// Number of leaf pages.
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Page size the tree was built with.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    fn collect_ranges(
        &self,
        node: &Node,
        query: &Query,
        out: &mut Vec<(std::ops::Range<usize>, bool)>,
        guaranteed: &mut [bool],
    ) {
        match node {
            Node::Leaf { start, end, bbox } => {
                if start == end {
                    return;
                }
                let mut intersects = true;
                let mut contained = true;
                for p in query.predicates() {
                    let (lo, hi) = bbox[p.dim];
                    if hi < p.lo || lo > p.hi {
                        intersects = false;
                        break;
                    }
                    if lo < p.lo || hi > p.hi {
                        contained = false;
                    }
                }
                if intersects {
                    if !contained {
                        for p in query.predicates() {
                            let (lo, hi) = bbox[p.dim];
                            guaranteed[p.dim] &= p.lo <= lo && hi <= p.hi;
                        }
                    }
                    out.push((*start..*end, contained));
                }
            }
            Node::Internal {
                split_dims,
                children,
            } => {
                for (child, node) in children.iter().enumerate() {
                    // Prune children outside the query along any split dim.
                    let mut overlaps = true;
                    for (bit, &(d, mid)) in split_dims.iter().enumerate() {
                        if let Some(p) = query.predicate_on(d) {
                            let upper_half = child & (1 << bit) != 0;
                            if upper_half && p.hi <= mid {
                                overlaps = false;
                                break;
                            }
                            if !upper_half && p.lo > mid {
                                overlaps = false;
                                break;
                            }
                        }
                    }
                    if overlaps {
                        self.collect_ranges(node, query, out, guaranteed);
                    }
                }
            }
        }
    }
}

fn leaf_bbox(data: &Dataset, rows: &[usize]) -> Vec<(Value, Value)> {
    (0..data.num_dims())
        .map(|d| {
            let mut lo = Value::MAX;
            let mut hi = Value::MIN;
            for &r in rows {
                let v = data.get(r, d);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if rows.is_empty() {
                (0, 0)
            } else {
                (lo, hi)
            }
        })
        .collect()
}

impl MultiDimIndex for HyperOctree {
    fn name(&self) -> &str {
        "HyperOctree"
    }

    fn source(&self) -> &dyn ScanSource {
        &self.store
    }

    fn plan(&self, query: &Query) -> ScanPlan {
        let mut ranges = Vec::new();
        let mut guaranteed = vec![true; self.store.num_dims()];
        self.collect_ranges(&self.root, query, &mut ranges, &mut guaranteed);
        // Scan in physical order so adjacent leaves merge into one range.
        ranges.sort_by_key(|(r, _)| r.start);
        ScanPlan::from_ranges(ranges).with_guaranteed_dims(query, &guaranteed)
    }

    fn size_bytes(&self) -> usize {
        let internal = self.num_nodes - self.num_leaves;
        internal * (MAX_SPLIT_DIMS * (std::mem::size_of::<usize>() + std::mem::size_of::<Value>()))
            + self.num_leaves
                * (2 * std::mem::size_of::<usize>()
                    + self.store.num_dims() * 2 * std::mem::size_of::<Value>())
    }

    fn build_timing(&self) -> BuildTiming {
        self.timing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::sample::SplitMix;
    use tsunami_core::{AggResult, Predicate};

    fn data(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = SplitMix::new(seed);
        Dataset::from_columns(
            (0..d)
                .map(|_| (0..n).map(|_| rng.next_below(10_000)).collect())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn octree_matches_full_scan_oracle() {
        let ds = data(4_000, 3, 51);
        let idx = HyperOctree::build(&ds, &Workload::default(), 128);
        let mut rng = SplitMix::new(52);
        for _ in 0..25 {
            let dim = rng.next_below(3) as usize;
            let lo = rng.next_below(9_000);
            let q = Query::count(vec![Predicate::range(dim, lo, lo + 800).unwrap()]).unwrap();
            assert_eq!(idx.execute(&q), q.execute_full_scan(&ds));
        }
        let q = Query::count(vec![
            Predicate::range(0, 0, 5_000).unwrap(),
            Predicate::range(2, 2_000, 7_000).unwrap(),
        ])
        .unwrap();
        assert_eq!(idx.execute(&q), q.execute_full_scan(&ds));
    }

    #[test]
    fn selective_queries_prune_most_points() {
        let ds = data(20_000, 2, 53);
        let idx = HyperOctree::build(&ds, &Workload::default(), 256);
        let q = Query::count(vec![
            Predicate::range(0, 0, 1_000).unwrap(),
            Predicate::range(1, 0, 1_000).unwrap(),
        ])
        .unwrap();
        let (res, stats) = idx.execute_with_stats(&q);
        assert_eq!(res, q.execute_full_scan(&ds));
        assert!(stats.points_scanned < ds.len() / 4);
    }

    #[test]
    fn page_size_bounds_leaf_population() {
        let ds = data(5_000, 2, 54);
        let idx = HyperOctree::build(&ds, &Workload::default(), 100);
        assert!(idx.num_leaves() >= 5_000 / 100 / 4);
        assert!(idx.num_nodes() >= idx.num_leaves());
        assert_eq!(idx.page_size(), 100);
    }

    #[test]
    fn high_dimensional_fanout_is_capped() {
        // 10 dims would naively be 1024 children per node; the cap keeps the
        // build tractable and still correct.
        let ds = data(2_000, 10, 55);
        let idx = HyperOctree::build(&ds, &Workload::default(), 200);
        let q = Query::count(vec![Predicate::range(7, 0, 5_000).unwrap()]).unwrap();
        assert_eq!(idx.execute(&q), q.execute_full_scan(&ds));
        assert!(idx.size_bytes() > 0);
        assert_eq!(idx.name(), "HyperOctree");
    }

    #[test]
    fn identical_points_terminate() {
        let ds = Dataset::from_columns(vec![vec![3u64; 1000], vec![3u64; 1000]]).unwrap();
        let idx = HyperOctree::build(&ds, &Workload::default(), 10);
        let q = Query::count(vec![Predicate::eq(0, 3)]).unwrap();
        assert_eq!(idx.execute(&q), AggResult::Count(1000));
    }
}
