//! The trivial full-scan baseline: no index structure at all.

use std::time::Instant;

use tsunami_core::{BuildTiming, Dataset, MultiDimIndex, Query, ScanPlan, ScanSource};
use tsunami_store::ColumnStore;

/// An "index" that always scans the entire table. Useful as a correctness
/// oracle and as the floor for performance comparisons.
#[derive(Debug)]
pub struct FullScanIndex {
    store: ColumnStore,
    timing: BuildTiming,
}

impl FullScanIndex {
    /// Builds the full-scan baseline (just copies the data into the store).
    pub fn build(data: &Dataset) -> Self {
        let start = Instant::now();
        let store = ColumnStore::from_dataset(data);
        Self {
            store,
            timing: BuildTiming {
                sort_secs: start.elapsed().as_secs_f64(),
                optimize_secs: 0.0,
            },
        }
    }

    /// Absorbs new rows: a full scan has no layout, so ingest is a plain
    /// append.
    pub fn ingest(&self, rows: &Dataset) -> Self {
        let start = Instant::now();
        let mut store = self.store.clone();
        store.append_dataset(rows);
        Self {
            store,
            timing: BuildTiming {
                sort_secs: start.elapsed().as_secs_f64(),
                optimize_secs: 0.0,
            },
        }
    }
}

impl MultiDimIndex for FullScanIndex {
    fn name(&self) -> &str {
        "FullScan"
    }

    fn source(&self) -> &dyn ScanSource {
        &self.store
    }

    fn plan(&self, _query: &Query) -> ScanPlan {
        ScanPlan::full(self.store.len())
    }

    fn size_bytes(&self) -> usize {
        0
    }

    fn build_timing(&self) -> BuildTiming {
        self.timing
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        // Lets the engine's ingestion path reach `FullScanIndex::ingest`
        // behind a `Box<dyn MultiDimIndex>`.
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::{AggResult, Predicate};

    #[test]
    fn full_scan_matches_reference() {
        let data = Dataset::from_columns(vec![(0..100u64).collect(), (0..100u64).rev().collect()])
            .unwrap();
        let idx = FullScanIndex::build(&data);
        let q = Query::count(vec![Predicate::range(0, 10, 29).unwrap()]).unwrap();
        assert_eq!(idx.execute(&q), q.execute_full_scan(&data));
        assert_eq!(idx.size_bytes(), 0);
        assert_eq!(idx.name(), "FullScan");
    }

    #[test]
    fn stats_report_whole_table_scanned() {
        let data = Dataset::from_columns(vec![(0..50u64).collect()]).unwrap();
        let idx = FullScanIndex::build(&data);
        let q = Query::count(vec![Predicate::range(0, 0, 9).unwrap()]).unwrap();
        let (res, stats) = idx.execute_with_stats(&q);
        assert_eq!(res, AggResult::Count(10));
        assert_eq!(stats.points_scanned, 50);
        assert_eq!(stats.ranges_scanned, 1);
        assert_eq!(stats.points_matched, 10);
    }
}
