//! The trivial full-scan baseline: no index structure at all.

use std::time::Instant;

use tsunami_core::{BuildTiming, Dataset, MultiDimIndex, Query, ScanPlan, ScanSource};
use tsunami_store::ColumnStore;

/// An "index" that always scans the entire table. Useful as a correctness
/// oracle and as the floor for performance comparisons.
#[derive(Debug)]
pub struct FullScanIndex {
    store: ColumnStore,
    timing: BuildTiming,
}

impl FullScanIndex {
    /// Builds the full-scan baseline (just copies the data into the store).
    pub fn build(data: &Dataset) -> Self {
        let start = Instant::now();
        let mut store = ColumnStore::from_dataset(data);
        store.encode_blocks();
        Self {
            store,
            timing: BuildTiming {
                sort_secs: start.elapsed().as_secs_f64(),
                optimize_secs: 0.0,
            },
        }
    }

    /// Absorbs new rows: a full scan has no layout, so ingest is a plain
    /// append.
    pub fn ingest(&self, rows: &Dataset) -> Self {
        let start = Instant::now();
        let mut store = self.store.clone();
        store.append_dataset(rows);
        Self {
            store,
            timing: BuildTiming {
                sort_secs: start.elapsed().as_secs_f64(),
                optimize_secs: 0.0,
            },
        }
    }

    /// Tombstones the rows matching `query`'s predicates, returning the new
    /// index and the number of rows newly deleted. A full scan has no layout
    /// to protect, so compaction is a simple policy: once the majority of
    /// rows are dead, the dead rows are physically dropped.
    pub fn delete_where(&self, query: &Query) -> (Self, usize) {
        let start = Instant::now();
        let mut store = self.store.clone();
        let deleted = store.delete_where(query);
        if store.tombstones().deleted() * 2 > store.len() {
            let n = store.len();
            store.drop_deleted_in(0..n);
            store.encode_blocks();
        }
        (
            Self {
                store,
                timing: BuildTiming {
                    sort_secs: start.elapsed().as_secs_f64(),
                    optimize_secs: 0.0,
                },
            },
            deleted,
        )
    }
}

impl MultiDimIndex for FullScanIndex {
    fn name(&self) -> &str {
        "FullScan"
    }

    fn source(&self) -> &dyn ScanSource {
        &self.store
    }

    fn plan(&self, _query: &Query) -> ScanPlan {
        ScanPlan::full(self.store.len())
    }

    fn size_bytes(&self) -> usize {
        0
    }

    fn build_timing(&self) -> BuildTiming {
        self.timing
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        // Lets the engine's ingestion path reach `FullScanIndex::ingest`
        // behind a `Box<dyn MultiDimIndex>`.
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::{AggResult, Predicate};

    #[test]
    fn full_scan_matches_reference() {
        let data = Dataset::from_columns(vec![(0..100u64).collect(), (0..100u64).rev().collect()])
            .unwrap();
        let idx = FullScanIndex::build(&data);
        let q = Query::count(vec![Predicate::range(0, 10, 29).unwrap()]).unwrap();
        assert_eq!(idx.execute(&q), q.execute_full_scan(&data));
        assert_eq!(idx.size_bytes(), 0);
        assert_eq!(idx.name(), "FullScan");
    }

    #[test]
    fn delete_where_tombstones_then_compacts_past_half_dead() {
        let data = Dataset::from_columns(vec![(0..100u64).collect(), (0..100u64).rev().collect()])
            .unwrap();
        let idx = FullScanIndex::build(&data);
        // A small delete stays tombstoned...
        let del = Query::count(vec![Predicate::range(0, 0, 9).unwrap()]).unwrap();
        let (after, n) = idx.delete_where(&del);
        assert_eq!(n, 10);
        assert_eq!(after.store.len(), 100);
        assert_eq!(after.store.live_len(), 90);
        let q = Query::count(vec![Predicate::range(0, 0, 19).unwrap()]).unwrap();
        assert_eq!(after.execute(&q), AggResult::Count(10));
        // ...a majority-dead store compacts physically.
        let big = Query::count(vec![Predicate::range(0, 0, 79).unwrap()]).unwrap();
        let (compacted, n) = after.delete_where(&big);
        assert_eq!(n, 70);
        assert_eq!(compacted.store.len(), 20);
        assert_eq!(compacted.execute(&q), AggResult::Count(0));
        // Idempotent on the already-deleted band.
        let (_, n) = compacted.delete_where(&big);
        assert_eq!(n, 0);
    }

    #[test]
    fn stats_report_whole_table_scanned() {
        let data = Dataset::from_columns(vec![(0..50u64).collect()]).unwrap();
        let idx = FullScanIndex::build(&data);
        let q = Query::count(vec![Predicate::range(0, 0, 9).unwrap()]).unwrap();
        let (res, stats) = idx.execute_with_stats(&q);
        assert_eq!(res, AggResult::Count(10));
        assert_eq!(stats.points_scanned, 50);
        assert_eq!(stats.ranges_scanned, 1);
        assert_eq!(stats.points_matched, 10);
    }
}
