//! Configuration knobs for building a Tsunami index.
//!
//! Defaults follow the paper: 128 histogram bins for skew computation, a
//! DBSCAN eps of 0.2 for query-type clustering, a minimum skew reduction of
//! 5% of |Q| to accept a Grid Tree split, a minimum region population of 1%
//! of the points/queries, and a 10% tolerance when merging adjacent covering
//! nodes of the skew tree (§4.3). Augmented Grid heuristics use a 10%
//! error-bound threshold for functional mappings and a 25% empty-cell
//! threshold for conditional CDFs (§5.3.2).

use crate::augmented_grid::OptimizerKind;

/// Which components of Tsunami are enabled — used for the Fig 12a drill-down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexVariant {
    /// Full Tsunami: Grid Tree + Augmented Grid per region.
    Full,
    /// Grid Tree only: each region is indexed with a Flood-style grid
    /// (independent CDFs only).
    GridTreeOnly,
    /// Augmented Grid only: a single Augmented Grid over the whole space.
    AugmentedGridOnly,
}

/// Configuration for [`crate::TsunamiIndex::build_with_cost`].
#[derive(Debug, Clone, PartialEq)]
pub struct TsunamiConfig {
    /// Which components to enable (Fig 12a ablation).
    pub variant: IndexVariant,
    /// Optimizer used for each Augmented Grid (Fig 12b comparison).
    pub optimizer: OptimizerKind,

    // --- Grid Tree parameters (§4.3) ---
    /// Number of histogram bins used to approximate query PDFs.
    pub skew_bins: usize,
    /// DBSCAN eps for query-type clustering over selectivity embeddings.
    pub dbscan_eps: f64,
    /// Minimum number of queries for a DBSCAN core point.
    pub dbscan_min_pts: usize,
    /// A split is accepted only if the best skew reduction is at least this
    /// fraction of the number of intersecting queries.
    pub min_skew_reduction_fraction: f64,
    /// A node is a leaf if it has fewer than this fraction of all points.
    pub min_region_point_fraction: f64,
    /// A node is a leaf if it intersects fewer than this fraction of all queries.
    pub min_region_query_fraction: f64,
    /// Adjacent covering-set nodes are merged if the merged skew is at most
    /// `(1 + merge_tolerance)` times the sum of their skews.
    pub merge_tolerance: f64,
    /// Hard cap on Grid Tree depth (safety bound, not from the paper).
    pub max_tree_depth: usize,

    // --- Augmented Grid parameters (§5.3) ---
    /// Functional mapping is used when its error span is below this fraction
    /// of the target dimension's domain.
    pub fm_error_fraction: f64,
    /// Conditional CDF is used when more than this fraction of cells in the
    /// 2-d hyperplane would otherwise be empty.
    pub ccdf_empty_fraction: f64,
    /// Maximum number of cells per Augmented Grid.
    pub max_cells_per_grid: usize,
    /// Rows sampled per region for cost estimation during optimization.
    pub optimizer_sample_size: usize,
    /// Maximum optimizer iterations (AGD outer loop).
    pub optimizer_max_iters: usize,
    /// Iterations for the black-box (basin hopping) optimizer baseline.
    pub blackbox_iters: usize,
    /// Seed for deterministic sampling and optimizer perturbations.
    pub seed: u64,

    // --- Incremental re-optimization parameters (§8) ---
    /// [`crate::TsunamiIndex::reoptimize`] escalates to a full rebuild when
    /// the whole-workload frequency drift (0 = identical mix, 2 = fully
    /// disjoint mixes) *exceeds* this threshold. The default of 2.0 never
    /// escalates on drift alone — even a fully replaced workload is served
    /// well by re-optimizing the existing regions' grids — but deployments
    /// that also want a fresh Grid Tree under heavy shift can lower it.
    pub reopt_rebuild_drift: f64,
    /// Queries retained in a [`crate::WorkloadMonitor`]'s sliding observation
    /// window (oldest evicted first).
    pub observation_window: usize,
    /// During incremental re-optimization, a Grid-Tree subtree is collapsed
    /// (and its merged region re-split for the new workload) when the mean
    /// fraction of its leaves a routed query reaches is at least this value
    /// — i.e. when its splits prune less than `1 - threshold` of the
    /// subtree per query. 1.0 collapses only zero-pruning subtrees; lower
    /// values fold stale structure back more aggressively and rely on the
    /// re-split to restore pruning where it matters.
    pub reopt_collapse_reach: f64,

    // --- Incremental ingestion parameters (data shift) ---
    /// During [`crate::TsunamiIndex::ingest`], a region whose accumulated
    /// inserted-row fraction (rows ingested since the region's layout was
    /// last optimized, over its current size) exceeds this bar gets its
    /// Augmented-Grid *layout* re-optimized (warm-started from the current
    /// one) instead of merely re-gridded with the existing layout. The same
    /// bar is the engine's data-drift trigger: `Database::auto_reoptimize`
    /// fires once the whole index's ingested fraction passes it.
    pub ingest_region_staleness: f64,
    /// [`crate::TsunamiIndex::ingest`] escalates to a full rebuild (fresh
    /// Grid Tree and layouts, over data + ingested rows) when the whole
    /// index's ingested-row fraction would exceed this bar. Between the two
    /// bars the Grid Tree structure is reused and only touched regions pay
    /// re-grid/re-optimization cost.
    pub ingest_rebuild_staleness: f64,
}

impl Default for TsunamiConfig {
    fn default() -> Self {
        Self {
            variant: IndexVariant::Full,
            optimizer: OptimizerKind::Adaptive,
            skew_bins: 128,
            dbscan_eps: 0.2,
            dbscan_min_pts: 2,
            min_skew_reduction_fraction: 0.05,
            min_region_point_fraction: 0.01,
            min_region_query_fraction: 0.01,
            merge_tolerance: 0.10,
            max_tree_depth: 8,
            fm_error_fraction: 0.10,
            ccdf_empty_fraction: 0.25,
            max_cells_per_grid: 1 << 16,
            optimizer_sample_size: 2_000,
            optimizer_max_iters: 20,
            blackbox_iters: 50,
            seed: 0x7500_0A11,
            reopt_rebuild_drift: 2.0,
            observation_window: 1_024,
            reopt_collapse_reach: 0.5,
            ingest_region_staleness: 0.25,
            ingest_rebuild_staleness: 0.5,
        }
    }
}

impl TsunamiConfig {
    /// A reduced configuration for unit tests and doc tests: small samples,
    /// few iterations, small cell budgets.
    pub fn fast() -> Self {
        Self {
            skew_bins: 64,
            max_cells_per_grid: 1 << 10,
            optimizer_sample_size: 400,
            optimizer_max_iters: 6,
            blackbox_iters: 10,
            max_tree_depth: 4,
            ..Self::default()
        }
    }

    /// Returns a copy using the given index variant.
    pub fn with_variant(mut self, variant: IndexVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Returns a copy using the given Augmented Grid optimizer.
    pub fn with_optimizer(mut self, optimizer: OptimizerKind) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Returns a copy using the given incremental-reoptimization rebuild
    /// threshold (see [`TsunamiConfig::reopt_rebuild_drift`]).
    pub fn with_reopt_rebuild_drift(mut self, drift: f64) -> Self {
        self.reopt_rebuild_drift = drift;
        self
    }

    /// Returns a copy using the given ingest staleness bars (see
    /// [`TsunamiConfig::ingest_region_staleness`] and
    /// [`TsunamiConfig::ingest_rebuild_staleness`]).
    pub fn with_ingest_staleness(mut self, region: f64, rebuild: f64) -> Self {
        self.ingest_region_staleness = region;
        self.ingest_rebuild_staleness = rebuild;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = TsunamiConfig::default();
        assert_eq!(c.skew_bins, 128);
        assert!((c.dbscan_eps - 0.2).abs() < 1e-12);
        assert!((c.min_skew_reduction_fraction - 0.05).abs() < 1e-12);
        assert!((c.min_region_point_fraction - 0.01).abs() < 1e-12);
        assert!((c.merge_tolerance - 0.10).abs() < 1e-12);
        assert!((c.fm_error_fraction - 0.10).abs() < 1e-12);
        assert!((c.ccdf_empty_fraction - 0.25).abs() < 1e-12);
        assert_eq!(c.variant, IndexVariant::Full);
    }

    #[test]
    fn builders_modify_variant_and_optimizer() {
        let c = TsunamiConfig::fast()
            .with_variant(IndexVariant::GridTreeOnly)
            .with_optimizer(OptimizerKind::GradientOnly);
        assert_eq!(c.variant, IndexVariant::GridTreeOnly);
        assert_eq!(c.optimizer, OptimizerKind::GradientOnly);
        assert!(c.optimizer_sample_size < TsunamiConfig::default().optimizer_sample_size);
    }
}
