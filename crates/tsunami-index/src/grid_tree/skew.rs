//! Query-skew computation (§4.2.1).
//!
//! The skew of a query set `Q` over a range `[a, b)` in dimension `i` is the
//! Earth Mover's Distance between the empirical PDF of the queries over that
//! range and the uniform distribution. The PDF is approximated with a
//! histogram: a query intersecting `m` contiguous bins contributes `1/m` mass
//! to each. Skew is computed *per query type* and summed, so opposing skews
//! of different types cannot cancel each other out (§4.3.1).

use crate::query_types::QueryType;
use tsunami_core::{emd::emd_from_uniform, Histogram, Value};

/// Pre-computed per-type query histograms over one dimension of a Grid Tree
/// node's range, supporting skew queries over arbitrary bin sub-ranges.
#[derive(Debug, Clone)]
pub struct SkewAnalyzer {
    /// One histogram per query type (types with no query filtering this
    /// dimension inside the range are omitted — they are uniform by
    /// definition and contribute no skew).
    hists: Vec<Histogram>,
    /// Shared bin edges (all histograms use the same binning).
    edges: Vec<Value>,
    /// Number of queries that actually contributed mass.
    contributing_queries: usize,
}

impl SkewAnalyzer {
    /// Builds the analyzer for dimension `dim` over the value range
    /// `[lo, hi]` with (up to) `bins` histogram bins.
    pub fn new(types: &[QueryType], dim: usize, lo: Value, hi: Value, bins: usize) -> Self {
        let template = Histogram::equi_width(lo, hi, bins.max(2));
        let edges = template.edges().to_vec();
        let mut hists = Vec::new();
        let mut contributing = 0usize;
        for t in types {
            if !t.filtered_dims.contains(&dim) {
                continue;
            }
            let mut h = template.clone();
            let mut any = false;
            for q in &t.queries {
                if let Some(p) = q.predicate_on(dim) {
                    // Clip the filter range to the node's range; skip queries
                    // that do not intersect it.
                    if p.hi < lo || p.lo > hi {
                        continue;
                    }
                    let clo = p.lo.max(lo);
                    let chi = p.hi.min(hi);
                    h.add_query_range(clo, chi);
                    any = true;
                    contributing += 1;
                }
            }
            if any {
                hists.push(h);
            }
        }
        Self {
            hists,
            edges,
            contributing_queries: contributing,
        }
    }

    /// Number of histogram bins.
    pub fn num_bins(&self) -> usize {
        self.edges.len() - 1
    }

    /// Number of queries that contributed mass to any histogram.
    pub fn contributing_queries(&self) -> usize {
        self.contributing_queries
    }

    /// The value at which bin `bin` starts.
    pub fn bin_start(&self, bin: usize) -> Value {
        self.edges[bin.min(self.edges.len() - 1)]
    }

    /// Skew over the bin range `[x, y)`: the sum over query types of the EMD
    /// between that type's histogram restricted to `[x, y)` and the uniform
    /// distribution of equal mass.
    ///
    /// The EMD is measured with distance expressed as a *fraction of the
    /// range* `[x, y)` (i.e. bin distance divided by the number of bins), so
    /// skew values are comparable across ranges of different widths and the
    /// "5% of |Q|" split-acceptance threshold is meaningful: a query type
    /// whose mass all sits at one end of the range has skew ≈ 0.5 × |Q_t|,
    /// while a uniform type has skew ≈ 0.
    pub fn skew_bins(&self, x: usize, y: usize) -> f64 {
        if y <= x + 1 {
            // A single bin cannot be distinguished from uniform (§4.3.2).
            return 0.0;
        }
        let width = (y - x) as f64;
        self.hists
            .iter()
            .map(|h| emd_from_uniform(&h.mass()[x..y]) / width)
            .sum()
    }

    /// Skew over the full range of the analyzer.
    pub fn total_skew(&self) -> f64 {
        self.skew_bins(0, self.num_bins())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::{Predicate, Query};

    fn query(dim: usize, lo: Value, hi: Value) -> Query {
        Query::count(vec![Predicate::range(dim, lo, hi).unwrap()]).unwrap()
    }

    /// The running example of Fig 2/3: points over years 2016..2020 (encoded
    /// 0..4800 "days"); Qr filters uniform one-year spans, Qg filters
    /// one-month spans only over the last year.
    fn fig2_types() -> Vec<QueryType> {
        let mut qr = Vec::new();
        for i in 0..40u64 {
            let start = (i * 90) % 3600;
            qr.push(query(0, start, start + 1200));
        }
        let mut qg = Vec::new();
        for i in 0..40u64 {
            let start = 3600 + (i * 28) % 1100;
            qg.push(query(0, start, start + 100));
        }
        vec![
            QueryType {
                queries: qr,
                filtered_dims: vec![0],
            },
            QueryType {
                queries: qg,
                filtered_dims: vec![0],
            },
        ]
    }

    #[test]
    fn uniform_queries_have_low_skew_and_concentrated_queries_high_skew() {
        let types = fig2_types();
        let a = SkewAnalyzer::new(&types[..1], 0, 0, 4800, 64);
        let b = SkewAnalyzer::new(&types[1..], 0, 0, 4800, 64);
        assert!(
            b.total_skew() > a.total_skew() * 2.0,
            "recent-only queries should be far more skewed: {} vs {}",
            b.total_skew(),
            a.total_skew()
        );
    }

    #[test]
    fn splitting_at_the_skew_boundary_reduces_skew() {
        let types = fig2_types();
        let analyzer = SkewAnalyzer::new(&types, 0, 0, 4800, 64);
        let total = analyzer.total_skew();
        // Bin index corresponding to value 3600 (== 3/4 of the range).
        let split_bin = 48;
        let after = analyzer.skew_bins(0, split_bin) + analyzer.skew_bins(split_bin, 64);
        assert!(
            after < total * 0.8,
            "splitting at the year boundary should cut skew: {after} vs {total}"
        );
    }

    #[test]
    fn per_type_separation_prevents_cancellation() {
        // Two types with opposite skews over the same dimension.
        let low = QueryType {
            queries: (0..20).map(|_| query(0, 0, 99)).collect(),
            filtered_dims: vec![0],
        };
        let high = QueryType {
            queries: (0..20).map(|_| query(0, 900, 999)).collect(),
            filtered_dims: vec![0],
        };
        let combined_as_one_type = QueryType {
            queries: low.queries.iter().chain(&high.queries).cloned().collect(),
            filtered_dims: vec![0],
        };
        let separated = SkewAnalyzer::new(&[low, high], 0, 0, 1000, 32).total_skew();
        let merged = SkewAnalyzer::new(&[combined_as_one_type], 0, 0, 1000, 32).total_skew();
        // Both are skewed, but the merged view under-reports it relative to
        // the per-type view (the two ends partially cancel).
        assert!(separated >= merged * 0.99);
    }

    #[test]
    fn queries_outside_the_range_are_ignored() {
        let t = QueryType {
            queries: vec![query(0, 5000, 6000)],
            filtered_dims: vec![0],
        };
        let analyzer = SkewAnalyzer::new(&[t], 0, 0, 1000, 32);
        assert_eq!(analyzer.contributing_queries(), 0);
        assert_eq!(analyzer.total_skew(), 0.0);
    }

    #[test]
    fn types_not_filtering_the_dimension_are_skipped() {
        let t = QueryType {
            queries: vec![query(1, 0, 10)],
            filtered_dims: vec![1],
        };
        let analyzer = SkewAnalyzer::new(&[t], 0, 0, 1000, 32);
        assert_eq!(analyzer.total_skew(), 0.0);
    }

    #[test]
    fn single_bin_ranges_have_zero_skew() {
        let types = fig2_types();
        let analyzer = SkewAnalyzer::new(&types, 0, 0, 4800, 64);
        assert_eq!(analyzer.skew_bins(10, 11), 0.0);
        assert_eq!(analyzer.skew_bins(10, 10), 0.0);
        assert!(analyzer.bin_start(0) == 0);
        assert!(analyzer.num_bins() <= 64);
    }
}
