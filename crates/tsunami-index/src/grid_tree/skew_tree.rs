//! The skew tree: a tool for finding the split values that minimize combined
//! query skew along one dimension (§4.3.2, Fig 4).
//!
//! The skew tree is a balanced binary tree over the histogram bins of a
//! dimension; each node stores the query skew of the bin range it represents.
//! A *covering set* is a set of nodes whose ranges are disjoint and union to
//! the full range. Dynamic programming over the tree finds the covering set
//! with minimum combined skew in two passes; the boundaries between the
//! covering ranges become the candidate split values. A final ordered merge
//! pass removes superfluous splits (adjacent ranges whose merged skew is at
//! most `1 + tolerance` times the sum of their skews), acting as a
//! regularizer.

use super::skew::SkewAnalyzer;

/// One node of the skew tree, covering histogram bins `[x, y)`.
#[derive(Debug, Clone)]
struct SkewNode {
    x: usize,
    y: usize,
    skew: f64,
    /// Minimum combined skew achievable over this node's subtree.
    min_skew: f64,
    left: Option<Box<SkewNode>>,
    right: Option<Box<SkewNode>>,
}

/// The outcome of the covering-set search along one dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct CoveringSolution {
    /// Bin indices at which to split (exclusive of 0 and the bin count).
    pub split_bins: Vec<usize>,
    /// Combined skew of the chosen covering ranges (after merging).
    pub covering_skew: f64,
    /// Skew of the whole range without any split.
    pub total_skew: f64,
}

impl CoveringSolution {
    /// The skew reduction `R_i` achieved by these splits.
    pub fn reduction(&self) -> f64 {
        (self.total_skew - self.covering_skew).max(0.0)
    }
}

/// Builds the skew tree over all bins of the analyzer and returns the best
/// covering solution. `merge_tolerance` is the paper's 10% merge factor.
pub fn best_covering(analyzer: &SkewAnalyzer, merge_tolerance: f64) -> CoveringSolution {
    let n = analyzer.num_bins();
    let total_skew = analyzer.skew_bins(0, n);
    if n < 4 {
        return CoveringSolution {
            split_bins: vec![],
            covering_skew: total_skew,
            total_skew,
        };
    }

    let root = build_node(analyzer, 0, n);
    // Second pass: extract the covering set in left-to-right order.
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    extract_covering(&root, &mut ranges);

    // Merge pass: merge adjacent covering ranges when the combined skew is
    // not much larger than the sum of the individual skews.
    let mut merged: Vec<(usize, usize, f64)> = Vec::new();
    for (x, y) in ranges {
        let skew = analyzer.skew_bins(x, y);
        if let Some(&(px, _, pskew)) = merged.last() {
            let combined = analyzer.skew_bins(px, y);
            if combined <= (pskew + skew) * (1.0 + merge_tolerance) {
                *merged.last_mut().unwrap() = (px, y, combined);
                continue;
            }
        }
        merged.push((x, y, skew));
    }

    let covering_skew = merged.iter().map(|&(_, _, s)| s).sum();
    let split_bins = merged.iter().skip(1).map(|&(x, _, _)| x).collect();
    CoveringSolution {
        split_bins,
        covering_skew,
        total_skew,
    }
}

/// Recursively builds the skew tree over `[x, y)`, stopping at ranges of at
/// most 2 bins (a single bin has no measurable skew, §4.3.2).
fn build_node(analyzer: &SkewAnalyzer, x: usize, y: usize) -> SkewNode {
    let skew = analyzer.skew_bins(x, y);
    if y - x <= 2 {
        return SkewNode {
            x,
            y,
            skew,
            min_skew: skew,
            left: None,
            right: None,
        };
    }
    let mid = x + (y - x) / 2;
    let left = build_node(analyzer, x, mid);
    let right = build_node(analyzer, mid, y);
    let min_skew = skew.min(left.min_skew + right.min_skew);
    SkewNode {
        x,
        y,
        skew,
        min_skew,
        left: Some(Box::new(left)),
        right: Some(Box::new(right)),
    }
}

/// Walks the tree from the root: a node whose own skew equals its annotated
/// minimum is part of the optimal covering set; otherwise recurse.
fn extract_covering(node: &SkewNode, out: &mut Vec<(usize, usize)>) {
    let is_leaf = node.left.is_none();
    if is_leaf || node.skew <= node.min_skew + 1e-12 {
        out.push((node.x, node.y));
        return;
    }
    extract_covering(node.left.as_ref().unwrap(), out);
    extract_covering(node.right.as_ref().unwrap(), out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_types::QueryType;
    use tsunami_core::{Predicate, Query};

    fn query(lo: u64, hi: u64) -> Query {
        Query::count(vec![Predicate::range(0, lo, hi).unwrap()]).unwrap()
    }

    #[test]
    fn uniform_workload_needs_no_splits() {
        let t = QueryType {
            queries: (0..32u64).map(|i| query(i * 30, i * 30 + 40)).collect(),
            filtered_dims: vec![0],
        };
        let analyzer = SkewAnalyzer::new(&[t], 0, 0, 1000, 64);
        let sol = best_covering(&analyzer, 0.10);
        // The workload is close to uniform: skew is small and splitting does
        // not buy much, so the merge pass collapses most splits.
        assert!(sol.reduction() <= sol.total_skew);
        assert!(sol.covering_skew <= sol.total_skew + 1e-9);
    }

    #[test]
    fn concentrated_workload_finds_the_boundary() {
        // All queries hit only the last quarter of the domain.
        let t = QueryType {
            queries: (0..50u64)
                .map(|i| query(750 + (i % 20) * 10, 760 + (i % 20) * 10))
                .collect(),
            filtered_dims: vec![0],
        };
        let analyzer = SkewAnalyzer::new(&[t], 0, 0, 1000, 64);
        let sol = best_covering(&analyzer, 0.10);
        assert!(
            sol.reduction() > 0.3 * sol.total_skew,
            "splitting should remove a large share of the skew (total {}, covering {})",
            sol.total_skew,
            sol.covering_skew
        );
        assert!(!sol.split_bins.is_empty());
        // The chosen split bins are within the bin range.
        assert!(sol
            .split_bins
            .iter()
            .all(|&b| b > 0 && b < analyzer.num_bins()));
    }

    #[test]
    fn two_query_types_like_fig2_produce_a_split_near_the_year_boundary() {
        let qr = QueryType {
            queries: (0..40u64)
                .map(|i| query((i * 90) % 3600, (i * 90) % 3600 + 1200))
                .collect(),
            filtered_dims: vec![0],
        };
        let qg = QueryType {
            queries: (0..40u64)
                .map(|i| {
                    let s = 3600 + (i * 28) % 1100;
                    query(s, s + 100)
                })
                .collect(),
            filtered_dims: vec![0],
        };
        let analyzer = SkewAnalyzer::new(&[qr, qg], 0, 0, 4800, 64);
        let sol = best_covering(&analyzer, 0.10);
        assert!(sol.reduction() > 0.0);
        // At least one split should land around the 2019 boundary (bin 48 of
        // 64 covers value 3600), within a few bins.
        assert!(
            sol.split_bins.iter().any(|&b| (40..=56).contains(&b)),
            "splits {:?} should include one near bin 48",
            sol.split_bins
        );
    }

    #[test]
    fn tiny_bin_counts_return_no_splits() {
        let t = QueryType {
            queries: vec![query(0, 1)],
            filtered_dims: vec![0],
        };
        let analyzer = SkewAnalyzer::new(&[t], 0, 0, 3, 4);
        let sol = best_covering(&analyzer, 0.10);
        assert!(sol.split_bins.is_empty());
    }

    #[test]
    fn merge_tolerance_zero_keeps_more_splits_than_large_tolerance() {
        let t = QueryType {
            queries: (0..60u64)
                .map(|i| {
                    let s = (i % 3) * 333;
                    query(s, s + 20)
                })
                .collect(),
            filtered_dims: vec![0],
        };
        let analyzer = SkewAnalyzer::new(&[t], 0, 0, 1000, 64);
        let strict = best_covering(&analyzer, 0.0);
        let loose = best_covering(&analyzer, 10.0);
        assert!(strict.split_bins.len() >= loose.split_bins.len());
    }
}
