//! The Grid Tree: a lightweight space-partitioning decision tree that divides
//! the data space into non-overlapping regions with little query skew (§4).
//!
//! Unlike a k-d tree, an internal node may split on more than one value: a
//! node splitting dimension `ds` at values `{v1, ..., vk}` has `k + 1`
//! children. The tree is built greedily: at every node the split dimension
//! and values that most reduce query skew are chosen (via the skew tree's
//! covering-set search); a node becomes a leaf when the best reduction is
//! below 5% of the node's query count, or the node holds less than 1% of the
//! points or queries, matching the paper's defaults.
//!
//! The Grid Tree is *not* an end-to-end index: each leaf region is indexed
//! separately (by an Augmented Grid in full Tsunami), so the tree only has to
//! be deep enough to remove inter-region skew.

pub mod skew;
pub mod skew_tree;

use crate::config::TsunamiConfig;
use crate::query_types::QueryType;
use skew::SkewAnalyzer;
use skew_tree::best_covering;
use tsunami_core::{Dataset, Query, Value};

/// A leaf region of the Grid Tree.
#[derive(Debug, Clone)]
pub struct Region {
    /// Inclusive per-dimension value bounds of the region.
    pub bounds: Vec<(Value, Value)>,
}

impl Region {
    /// Whether a query's filter rectangle intersects this region.
    pub fn intersects(&self, query: &Query) -> bool {
        query.predicates().iter().all(|p| {
            let (lo, hi) = self.bounds[p.dim];
            p.hi >= lo && p.lo <= hi
        })
    }

    /// Whether this region is entirely contained in the query rectangle.
    pub fn contained_in(&self, query: &Query) -> bool {
        query.predicates().iter().all(|p| {
            let (lo, hi) = self.bounds[p.dim];
            p.lo <= lo && hi <= p.hi
        })
    }
}

/// Build-time payload of a leaf region: the rows it owns and the sample
/// queries that intersect it. Consumed by the Tsunami index to build each
/// region's Augmented Grid.
#[derive(Debug, Clone)]
pub struct RegionData {
    /// Indices of the dataset rows falling in the region.
    pub rows: Vec<usize>,
    /// Sample queries (from the optimization workload) intersecting the region.
    pub queries: Vec<Query>,
}

#[derive(Debug, Clone)]
enum Node {
    Internal {
        dim: usize,
        /// Sorted split values; child `i` covers values `< splits[i]` (and
        /// `>= splits[i-1]`), the last child covers values `>= splits[k-1]`.
        splits: Vec<Value>,
        children: Vec<usize>,
    },
    Leaf {
        region: usize,
    },
}

/// The Grid Tree structure (regions + decision nodes).
#[derive(Debug, Clone)]
pub struct GridTree {
    nodes: Vec<Node>,
    root: usize,
    regions: Vec<Region>,
    depth: usize,
}

impl GridTree {
    /// Builds the Grid Tree for a dataset and a workload already clustered
    /// into query types. Returns the tree and, for every leaf region, its
    /// rows and intersecting queries.
    pub fn build(
        data: &Dataset,
        types: &[QueryType],
        config: &TsunamiConfig,
    ) -> (GridTree, Vec<RegionData>) {
        let d = data.num_dims();
        let bounds: Vec<(Value, Value)> = (0..d)
            .map(|dim| data.domain(dim).unwrap_or((0, 0)))
            .collect();
        let total_queries: usize = types.iter().map(|t| t.queries.len()).sum();
        let min_points = ((data.len() as f64) * config.min_region_point_fraction).ceil() as usize;
        let min_queries =
            ((total_queries as f64) * config.min_region_query_fraction).ceil() as usize;

        let mut tree = GridTree {
            nodes: Vec::new(),
            root: 0,
            regions: Vec::new(),
            depth: 0,
        };
        let mut region_data = Vec::new();
        let all_rows: Vec<usize> = (0..data.len()).collect();
        let root = tree.build_node(
            data,
            all_rows,
            types.to_vec(),
            bounds,
            0,
            min_points.max(1),
            min_queries.max(1),
            config,
            &mut region_data,
        );
        tree.root = root;
        (tree, region_data)
    }

    #[allow(clippy::too_many_arguments)]
    fn build_node(
        &mut self,
        data: &Dataset,
        rows: Vec<usize>,
        types: Vec<QueryType>,
        bounds: Vec<(Value, Value)>,
        depth: usize,
        min_points: usize,
        min_queries: usize,
        config: &TsunamiConfig,
        region_data: &mut Vec<RegionData>,
    ) -> usize {
        self.depth = self.depth.max(depth);
        let num_queries: usize = types.iter().map(|t| t.queries.len()).sum();

        let stop = depth >= config.max_tree_depth
            || rows.len() <= min_points
            || num_queries <= min_queries;

        let best_split = if stop {
            None
        } else {
            self.find_best_split(&types, &bounds, num_queries, config)
        };

        match best_split {
            None => self.make_leaf(rows, types, bounds, region_data),
            Some((dim, split_values)) => {
                // Partition rows and queries among the k+1 children.
                let k = split_values.len();
                let mut child_rows: Vec<Vec<usize>> = vec![Vec::new(); k + 1];
                for &r in &rows {
                    let v = data.get(r, dim);
                    let child = split_values.partition_point(|&s| s <= v);
                    child_rows[child].push(r);
                }
                drop(rows);

                let mut child_ids = Vec::with_capacity(k + 1);
                let mut child_bounds_list = Vec::with_capacity(k + 1);
                for c in 0..=k {
                    let mut b = bounds.clone();
                    if c > 0 {
                        b[dim].0 = split_values[c - 1];
                    }
                    if c < k {
                        b[dim].1 = split_values[c] - 1;
                    }
                    child_bounds_list.push(b);
                }

                for (c, (crows, cbounds)) in
                    child_rows.into_iter().zip(child_bounds_list).enumerate()
                {
                    let _ = c;
                    // Queries intersecting this child along the split dim.
                    let ctypes: Vec<QueryType> = types
                        .iter()
                        .map(|t| QueryType {
                            filtered_dims: t.filtered_dims.clone(),
                            queries: t
                                .queries
                                .iter()
                                .filter(|q| match q.predicate_on(dim) {
                                    None => true,
                                    Some(p) => p.hi >= cbounds[dim].0 && p.lo <= cbounds[dim].1,
                                })
                                .cloned()
                                .collect(),
                        })
                        .filter(|t| !t.queries.is_empty())
                        .collect();
                    let id = self.build_node(
                        data,
                        crows,
                        ctypes,
                        cbounds,
                        depth + 1,
                        min_points,
                        min_queries,
                        config,
                        region_data,
                    );
                    child_ids.push(id);
                }

                let id = self.nodes.len();
                self.nodes.push(Node::Internal {
                    dim,
                    splits: split_values,
                    children: child_ids,
                });
                id
            }
        }
    }

    fn make_leaf(
        &mut self,
        rows: Vec<usize>,
        types: Vec<QueryType>,
        bounds: Vec<(Value, Value)>,
        region_data: &mut Vec<RegionData>,
    ) -> usize {
        let region_id = self.regions.len();
        self.regions.push(Region { bounds });
        let queries: Vec<Query> = types.into_iter().flat_map(|t| t.queries).collect();
        region_data.push(RegionData { rows, queries });
        let id = self.nodes.len();
        self.nodes.push(Node::Leaf { region: region_id });
        id
    }

    /// Finds the split dimension and values with the largest skew reduction,
    /// or `None` if no split clears the acceptance threshold.
    fn find_best_split(
        &self,
        types: &[QueryType],
        bounds: &[(Value, Value)],
        num_queries: usize,
        config: &TsunamiConfig,
    ) -> Option<(usize, Vec<Value>)> {
        let mut best: Option<(usize, Vec<Value>, f64)> = None;
        for (dim, &(lo, hi)) in bounds.iter().enumerate() {
            if hi <= lo {
                continue;
            }
            let analyzer = SkewAnalyzer::new(types, dim, lo, hi, config.skew_bins);
            if analyzer.contributing_queries() == 0 {
                continue;
            }
            let sol = best_covering(&analyzer, config.merge_tolerance);
            let reduction = sol.reduction();
            if reduction <= 0.0 || sol.split_bins.is_empty() {
                continue;
            }
            // Convert bin indices to split values, dropping degenerate ones.
            let mut values: Vec<Value> = sol
                .split_bins
                .iter()
                .map(|&b| analyzer.bin_start(b))
                .filter(|&v| v > lo && v <= hi)
                .collect();
            values.sort_unstable();
            values.dedup();
            if values.is_empty() {
                continue;
            }
            if best.as_ref().is_none_or(|&(_, _, r)| reduction > r) {
                best = Some((dim, values, reduction));
            }
        }
        let (dim, values, reduction) = best?;
        // Accept only if the reduction clears the minimum threshold (§4.3.2:
        // by default 5% of |Q|).
        if reduction < config.min_skew_reduction_fraction * num_queries as f64 {
            return None;
        }
        Some((dim, values))
    }

    /// Number of nodes (internal + leaf) — Table 4's "Num Grid Tree nodes".
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf regions — Table 4's "Num leaf regions".
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Maximum depth of the tree — Table 4's "Grid Tree depth".
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The leaf regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The region with the given id.
    pub fn region(&self, id: usize) -> &Region {
        &self.regions[id]
    }

    /// Collects the ids of every leaf region whose bounds intersect the
    /// query's filter rectangle.
    pub fn regions_for_query(&self, query: &Query) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_regions(self.root, query, &mut out);
        out
    }

    fn collect_regions(&self, node: usize, query: &Query, out: &mut Vec<usize>) {
        match &self.nodes[node] {
            Node::Leaf { region } => {
                if self.regions[*region].intersects(query) {
                    out.push(*region);
                }
            }
            Node::Internal {
                dim,
                splits,
                children,
            } => match query.predicate_on(*dim) {
                None => {
                    for &c in children {
                        self.collect_regions(c, query, out);
                    }
                }
                Some(p) => {
                    let first = splits.partition_point(|&s| s <= p.lo);
                    let last = splits.partition_point(|&s| s <= p.hi);
                    for &c in &children[first..=last] {
                        self.collect_regions(c, query, out);
                    }
                }
            },
        }
    }

    /// The region containing a point (every point maps to exactly one region).
    pub fn region_of_point(&self, point: &[Value]) -> usize {
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Leaf { region } => return *region,
                Node::Internal {
                    dim,
                    splits,
                    children,
                } => {
                    let child = splits.partition_point(|&s| s <= point[*dim]);
                    node = children[child];
                }
            }
        }
    }

    /// Approximate size of the tree structure in bytes (it is intentionally
    /// tiny compared to the per-region grids).
    pub fn size_bytes(&self) -> usize {
        let mut total = 0usize;
        for n in &self.nodes {
            total += match n {
                Node::Leaf { .. } => std::mem::size_of::<usize>(),
                Node::Internal {
                    splits, children, ..
                } => {
                    std::mem::size_of::<usize>()
                        + splits.len() * std::mem::size_of::<Value>()
                        + children.len() * std::mem::size_of::<usize>()
                }
            };
        }
        total += self
            .regions
            .iter()
            .map(|r| r.bounds.len() * 2 * std::mem::size_of::<Value>())
            .sum::<usize>();
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_types::cluster_query_types;
    use tsunami_core::{Predicate, Workload};

    /// Sales-over-time data like Fig 2: dim 0 is time (uniform over 0..4800),
    /// dim 1 is sales (uniform 0..10000).
    fn sales_data(n: usize) -> Dataset {
        Dataset::from_columns(vec![
            (0..n as u64).map(|v| v * 4800 / n as u64).collect(),
            (0..n as u64).map(|v| (v * 7919) % 10_000).collect(),
        ])
        .unwrap()
    }

    /// Fig 2's workload: Qr = one-year spans anywhere, Qg = one-month spans
    /// over the last year only.
    fn sales_workload() -> Workload {
        let mut qs = Vec::new();
        for i in 0..60u64 {
            let start = (i * 61) % 3600;
            qs.push(Query::count(vec![Predicate::range(0, start, start + 1200).unwrap()]).unwrap());
        }
        for i in 0..60u64 {
            let start = 3600 + (i * 17) % 1100;
            qs.push(Query::count(vec![Predicate::range(0, start, start + 100).unwrap()]).unwrap());
        }
        Workload::new(qs)
    }

    fn build_tree(data: &Dataset, workload: &Workload) -> (GridTree, Vec<RegionData>) {
        let config = TsunamiConfig::fast();
        let types = cluster_query_types(
            data,
            workload,
            config.dbscan_eps,
            config.dbscan_min_pts,
            500,
            1,
        );
        GridTree::build(data, &types, &config)
    }

    #[test]
    fn skewed_workload_produces_multiple_regions() {
        let data = sales_data(20_000);
        let workload = sales_workload();
        let (tree, regions) = build_tree(&data, &workload);
        assert!(
            tree.num_regions() >= 2,
            "skewed workload should split the space, got {} regions",
            tree.num_regions()
        );
        assert_eq!(tree.num_regions(), regions.len());
        assert!(tree.depth() >= 1);
        // One of the splits should be on the time dimension near 3600.
        let has_time_boundary = tree.regions().iter().any(|r| {
            (3000..=4200).contains(&r.bounds[0].0) || (3000..=4200).contains(&r.bounds[0].1)
        });
        assert!(has_time_boundary, "regions: {:?}", tree.regions());
    }

    #[test]
    fn regions_partition_all_rows_exactly_once() {
        let data = sales_data(10_000);
        let workload = sales_workload();
        let (tree, regions) = build_tree(&data, &workload);
        let total: usize = regions.iter().map(|r| r.rows.len()).sum();
        assert_eq!(total, data.len());
        // Every row's point maps back to the region that owns it.
        for (rid, rd) in regions.iter().enumerate() {
            for &row in rd.rows.iter().step_by(997) {
                let point = data.row(row);
                assert_eq!(tree.region_of_point(&point), rid);
            }
        }
    }

    #[test]
    fn region_bounds_are_disjoint_along_split_dims() {
        let data = sales_data(10_000);
        let workload = sales_workload();
        let (tree, _) = build_tree(&data, &workload);
        let regions = tree.regions();
        for i in 0..regions.len() {
            for j in (i + 1)..regions.len() {
                let overlap_all_dims = (0..2).all(|d| {
                    let (alo, ahi) = regions[i].bounds[d];
                    let (blo, bhi) = regions[j].bounds[d];
                    ahi >= blo && alo <= bhi
                });
                assert!(!overlap_all_dims, "regions {i} and {j} overlap");
            }
        }
    }

    #[test]
    fn query_traversal_finds_every_intersecting_region() {
        let data = sales_data(10_000);
        let workload = sales_workload();
        let (tree, _) = build_tree(&data, &workload);
        for q in workload.queries().iter().step_by(7) {
            let found = tree.regions_for_query(q);
            // Compare against brute force over region bounds.
            let expected: Vec<usize> = (0..tree.num_regions())
                .filter(|&r| tree.region(r).intersects(q))
                .collect();
            let mut found_sorted = found.clone();
            found_sorted.sort_unstable();
            assert_eq!(found_sorted, expected);
            assert!(!found.is_empty());
        }
    }

    #[test]
    fn uniform_workload_keeps_a_single_region() {
        let data = sales_data(5_000);
        // Perfectly uniform workload over time.
        let qs: Vec<Query> = (0..50u64)
            .map(|i| {
                Query::count(vec![Predicate::range(
                    0,
                    (i * 96) % 4800,
                    (i * 96) % 4800 + 96,
                )
                .unwrap()])
                .unwrap()
            })
            .collect();
        let (tree, _) = build_tree(&data, &Workload::new(qs));
        assert!(
            tree.num_regions() <= 3,
            "uniform workload should need few regions, got {}",
            tree.num_regions()
        );
    }

    #[test]
    fn empty_workload_is_one_region() {
        let data = sales_data(1_000);
        let (tree, regions) = GridTree::build(&data, &[], &TsunamiConfig::fast());
        assert_eq!(tree.num_regions(), 1);
        assert_eq!(regions[0].rows.len(), data.len());
        assert_eq!(tree.depth(), 0);
        assert!(tree.size_bytes() > 0);
    }

    #[test]
    fn region_containment_check() {
        let r = Region {
            bounds: vec![(10, 20), (0, 100)],
        };
        let q_contains = Query::count(vec![Predicate::range(0, 0, 50).unwrap()]).unwrap();
        let q_partial = Query::count(vec![Predicate::range(0, 15, 50).unwrap()]).unwrap();
        let q_miss = Query::count(vec![Predicate::range(0, 30, 50).unwrap()]).unwrap();
        assert!(r.contained_in(&q_contains));
        assert!(r.intersects(&q_partial) && !r.contained_in(&q_partial));
        assert!(!r.intersects(&q_miss));
    }
}
