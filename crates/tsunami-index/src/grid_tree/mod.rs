//! The Grid Tree: a lightweight space-partitioning decision tree that divides
//! the data space into non-overlapping regions with little query skew (§4).
//!
//! Unlike a k-d tree, an internal node may split on more than one value: a
//! node splitting dimension `ds` at values `{v1, ..., vk}` has `k + 1`
//! children. The tree is built greedily: at every node the split dimension
//! and values that most reduce query skew are chosen (via the skew tree's
//! covering-set search); a node becomes a leaf when the best reduction is
//! below 5% of the node's query count, or the node holds less than 1% of the
//! points or queries, matching the paper's defaults.
//!
//! The Grid Tree is *not* an end-to-end index: each leaf region is indexed
//! separately (by an Augmented Grid in full Tsunami), so the tree only has to
//! be deep enough to remove inter-region skew.

pub mod skew;
pub mod skew_tree;

use crate::config::TsunamiConfig;
use crate::query_types::QueryType;
use skew::SkewAnalyzer;
use skew_tree::best_covering;
use tsunami_core::{Dataset, Query, Value};

/// A leaf region of the Grid Tree.
#[derive(Debug, Clone)]
pub struct Region {
    /// Inclusive per-dimension value bounds of the region.
    pub bounds: Vec<(Value, Value)>,
}

impl Region {
    /// Whether a query's filter rectangle intersects this region.
    pub fn intersects(&self, query: &Query) -> bool {
        query.predicates().iter().all(|p| {
            let (lo, hi) = self.bounds[p.dim];
            p.hi >= lo && p.lo <= hi
        })
    }

    /// Whether this region is entirely contained in the query rectangle.
    pub fn contained_in(&self, query: &Query) -> bool {
        query.predicates().iter().all(|p| {
            let (lo, hi) = self.bounds[p.dim];
            p.lo <= lo && hi <= p.hi
        })
    }
}

/// Build-time payload of a leaf region: the rows it owns and the sample
/// queries that intersect it. Consumed by the Tsunami index to build each
/// region's Augmented Grid.
#[derive(Debug, Clone)]
pub struct RegionData {
    /// Indices of the dataset rows falling in the region.
    pub rows: Vec<usize>,
    /// Sample queries (from the optimization workload) intersecting the region.
    pub queries: Vec<Query>,
}

#[derive(Debug, Clone)]
enum Node {
    Internal {
        dim: usize,
        /// Sorted split values; child `i` covers values `< splits[i]` (and
        /// `>= splits[i-1]`), the last child covers values `>= splits[k-1]`.
        splits: Vec<Value>,
        children: Vec<usize>,
    },
    Leaf {
        region: usize,
    },
}

/// The Grid Tree structure (regions + decision nodes).
#[derive(Debug, Clone)]
pub struct GridTree {
    nodes: Vec<Node>,
    root: usize,
    regions: Vec<Region>,
    depth: usize,
}

impl GridTree {
    /// Builds the Grid Tree for a dataset and a workload already clustered
    /// into query types. Returns the tree and, for every leaf region, its
    /// rows and intersecting queries.
    pub fn build(
        data: &Dataset,
        types: &[QueryType],
        config: &TsunamiConfig,
    ) -> (GridTree, Vec<RegionData>) {
        let d = data.num_dims();
        let bounds: Vec<(Value, Value)> = (0..d)
            .map(|dim| data.domain(dim).unwrap_or((0, 0)))
            .collect();
        let total_queries: usize = types.iter().map(|t| t.queries.len()).sum();
        let min_points = ((data.len() as f64) * config.min_region_point_fraction).ceil() as usize;
        let min_queries =
            ((total_queries as f64) * config.min_region_query_fraction).ceil() as usize;

        let mut tree = GridTree {
            nodes: Vec::new(),
            root: 0,
            regions: Vec::new(),
            depth: 0,
        };
        let mut region_data = Vec::new();
        let all_rows: Vec<usize> = (0..data.len()).collect();
        let root = tree.build_node(
            data,
            all_rows,
            types.to_vec(),
            bounds,
            0,
            min_points.max(1),
            min_queries.max(1),
            config,
            &mut region_data,
        );
        tree.root = root;
        (tree, region_data)
    }

    #[allow(clippy::too_many_arguments)]
    fn build_node(
        &mut self,
        data: &Dataset,
        rows: Vec<usize>,
        types: Vec<QueryType>,
        bounds: Vec<(Value, Value)>,
        depth: usize,
        min_points: usize,
        min_queries: usize,
        config: &TsunamiConfig,
        region_data: &mut Vec<RegionData>,
    ) -> usize {
        self.depth = self.depth.max(depth);
        let num_queries: usize = types.iter().map(|t| t.queries.len()).sum();

        let stop = depth >= config.max_tree_depth
            || rows.len() <= min_points
            || num_queries <= min_queries;

        let best_split = if stop {
            None
        } else {
            self.find_best_split(&types, &bounds, num_queries, config)
        };

        match best_split {
            None => self.make_leaf(rows, types, bounds, region_data),
            Some((dim, split_values)) => {
                // Partition rows and queries among the k+1 children.
                let k = split_values.len();
                let mut child_rows: Vec<Vec<usize>> = vec![Vec::new(); k + 1];
                for &r in &rows {
                    let v = data.get(r, dim);
                    let child = split_values.partition_point(|&s| s <= v);
                    child_rows[child].push(r);
                }
                drop(rows);

                let mut child_ids = Vec::with_capacity(k + 1);
                let mut child_bounds_list = Vec::with_capacity(k + 1);
                for c in 0..=k {
                    let mut b = bounds.clone();
                    if c > 0 {
                        b[dim].0 = split_values[c - 1];
                    }
                    if c < k {
                        b[dim].1 = split_values[c] - 1;
                    }
                    child_bounds_list.push(b);
                }

                for (c, (crows, cbounds)) in
                    child_rows.into_iter().zip(child_bounds_list).enumerate()
                {
                    let _ = c;
                    // Queries intersecting this child along the split dim.
                    let ctypes: Vec<QueryType> = types
                        .iter()
                        .map(|t| QueryType {
                            filtered_dims: t.filtered_dims.clone(),
                            queries: t
                                .queries
                                .iter()
                                .filter(|q| match q.predicate_on(dim) {
                                    None => true,
                                    Some(p) => p.hi >= cbounds[dim].0 && p.lo <= cbounds[dim].1,
                                })
                                .cloned()
                                .collect(),
                        })
                        .filter(|t| !t.queries.is_empty())
                        .collect();
                    let id = self.build_node(
                        data,
                        crows,
                        ctypes,
                        cbounds,
                        depth + 1,
                        min_points,
                        min_queries,
                        config,
                        region_data,
                    );
                    child_ids.push(id);
                }

                let id = self.nodes.len();
                self.nodes.push(Node::Internal {
                    dim,
                    splits: split_values,
                    children: child_ids,
                });
                id
            }
        }
    }

    fn make_leaf(
        &mut self,
        rows: Vec<usize>,
        types: Vec<QueryType>,
        bounds: Vec<(Value, Value)>,
        region_data: &mut Vec<RegionData>,
    ) -> usize {
        let region_id = self.regions.len();
        self.regions.push(Region { bounds });
        let queries: Vec<Query> = types.into_iter().flat_map(|t| t.queries).collect();
        region_data.push(RegionData { rows, queries });
        let id = self.nodes.len();
        self.nodes.push(Node::Leaf { region: region_id });
        id
    }

    /// Finds the split dimension and values with the largest skew reduction,
    /// or `None` if no split clears the acceptance threshold.
    fn find_best_split(
        &self,
        types: &[QueryType],
        bounds: &[(Value, Value)],
        num_queries: usize,
        config: &TsunamiConfig,
    ) -> Option<(usize, Vec<Value>)> {
        let mut best: Option<(usize, Vec<Value>, f64)> = None;
        for (dim, &(lo, hi)) in bounds.iter().enumerate() {
            if hi <= lo {
                continue;
            }
            let analyzer = SkewAnalyzer::new(types, dim, lo, hi, config.skew_bins);
            if analyzer.contributing_queries() == 0 {
                continue;
            }
            let sol = best_covering(&analyzer, config.merge_tolerance);
            let reduction = sol.reduction();
            if reduction <= 0.0 || sol.split_bins.is_empty() {
                continue;
            }
            // Convert bin indices to split values, dropping degenerate ones.
            let mut values: Vec<Value> = sol
                .split_bins
                .iter()
                .map(|&b| analyzer.bin_start(b))
                .filter(|&v| v > lo && v <= hi)
                .collect();
            values.sort_unstable();
            values.dedup();
            if values.is_empty() {
                continue;
            }
            if best.as_ref().is_none_or(|&(_, _, r)| reduction > r) {
                best = Some((dim, values, reduction));
            }
        }
        let (dim, values, reduction) = best?;
        // Accept only if the reduction clears the minimum threshold (§4.3.2:
        // by default 5% of |Q|).
        if reduction < config.min_skew_reduction_fraction * num_queries as f64 {
            return None;
        }
        Some((dim, values))
    }

    /// Number of nodes (internal + leaf) — Table 4's "Num Grid Tree nodes".
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf regions — Table 4's "Num leaf regions".
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Maximum depth of the tree — Table 4's "Grid Tree depth".
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The leaf regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The region with the given id.
    pub fn region(&self, id: usize) -> &Region {
        &self.regions[id]
    }

    /// Collects the ids of every leaf region whose bounds intersect the
    /// query's filter rectangle.
    pub fn regions_for_query(&self, query: &Query) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_regions(self.root, query, &mut out);
        out
    }

    fn collect_regions(&self, node: usize, query: &Query, out: &mut Vec<usize>) {
        match &self.nodes[node] {
            Node::Leaf { region } => {
                if self.regions[*region].intersects(query) {
                    out.push(*region);
                }
            }
            Node::Internal {
                dim,
                splits,
                children,
            } => match query.predicate_on(*dim) {
                None => {
                    for &c in children {
                        self.collect_regions(c, query, out);
                    }
                }
                Some(p) => {
                    let first = splits.partition_point(|&s| s <= p.lo);
                    let last = splits.partition_point(|&s| s <= p.hi);
                    for &c in &children[first..=last] {
                        self.collect_regions(c, query, out);
                    }
                }
            },
        }
    }

    /// Returns a copy of the tree where every maximal subtree whose splits
    /// provide little pruning for `queries` — at least one query reaches it,
    /// and the *mean leaf reach* (fraction of the subtree's leaves a routed
    /// query visits, averaged over its routed queries) is at least
    /// `reach_threshold` — is collapsed into a single leaf region, along
    /// with, per new region, the range of old region ids it covers (old ids
    /// are contiguous within any subtree because leaves are numbered in
    /// build order).
    ///
    /// This is the first incremental re-optimization primitive: splits that
    /// only served a *previous* workload's skew barely prune the new one
    /// (most queries scan most children anyway) while still taxing every
    /// plan with extra region visits, so they are folded back together and
    /// the merged region's layout is re-derived for the new workload. At
    /// `reach_threshold = 1.0` only splits with *zero* pruning value
    /// collapse, so scan volume cannot increase; lower thresholds trade a
    /// bounded scan increase for fewer region visits per query (the caller
    /// is expected to re-split the merged region for the new workload, which
    /// restores any pruning that mattered). Subtrees no query touches are
    /// kept verbatim — their regions (and grids) cost nothing.
    pub fn collapse_for(
        &self,
        queries: &[Query],
        reach_threshold: f64,
        min_queries: usize,
    ) -> (GridTree, Vec<std::ops::Range<usize>>) {
        let mut out = GridTree {
            nodes: Vec::new(),
            root: 0,
            regions: Vec::new(),
            depth: 0,
        };
        let mut spans = Vec::new();
        let all: Vec<&Query> = queries.iter().collect();
        out.root = self.rebuild_collapsed(
            self.root,
            &all,
            reach_threshold,
            min_queries.max(1),
            0,
            &mut out,
            &mut spans,
        );
        debug_assert_eq!(
            spans.iter().map(|s| s.len()).sum::<usize>(),
            self.regions.len(),
            "collapsed regions must cover every old region exactly once"
        );
        (out, spans)
    }

    /// Number of leaves under `node` and, per query in `queries`, how many
    /// of them the query's routing reaches.
    fn leaf_reach(&self, node: usize, queries: &[&Query]) -> (usize, Vec<usize>) {
        match &self.nodes[node] {
            Node::Leaf { .. } => (1, vec![1; queries.len()]),
            Node::Internal {
                dim,
                splits,
                children,
            } => {
                let mut leaves = 0usize;
                let mut reached = vec![0usize; queries.len()];
                for (c, &child) in children.iter().enumerate() {
                    // Queries routed into this child keep their position so
                    // counts can be folded back into the caller's order.
                    let routed: Vec<(usize, &Query)> = queries
                        .iter()
                        .enumerate()
                        .filter(|(_, q)| Self::reaches_child(q, *dim, splits, c))
                        .map(|(i, q)| (i, *q))
                        .collect();
                    let child_queries: Vec<&Query> = routed.iter().map(|&(_, q)| q).collect();
                    let (child_leaves, child_reached) = self.leaf_reach(child, &child_queries);
                    leaves += child_leaves;
                    for ((i, _), r) in routed.iter().zip(child_reached) {
                        reached[*i] += r;
                    }
                }
                (leaves, reached)
            }
        }
    }

    fn reaches_child(q: &Query, dim: usize, splits: &[Value], child: usize) -> bool {
        match q.predicate_on(dim) {
            None => true,
            Some(p) => {
                let first = splits.partition_point(|&s| s <= p.lo);
                let last = splits.partition_point(|&s| s <= p.hi);
                (first..=last).contains(&child)
            }
        }
    }

    /// The old region ids (contiguous) and merged bounds of a subtree.
    fn subtree_extent(&self, node: usize) -> (std::ops::Range<usize>, Vec<(Value, Value)>) {
        match &self.nodes[node] {
            Node::Leaf { region } => (*region..*region + 1, self.regions[*region].bounds.clone()),
            Node::Internal { children, .. } => {
                let mut range: Option<std::ops::Range<usize>> = None;
                let mut bounds: Option<Vec<(Value, Value)>> = None;
                for &c in children {
                    let (r, b) = self.subtree_extent(c);
                    range = Some(match range {
                        None => r,
                        Some(acc) => {
                            debug_assert_eq!(acc.end, r.start, "leaves are built in order");
                            acc.start..r.end
                        }
                    });
                    bounds = Some(match bounds {
                        None => b,
                        Some(acc) => acc
                            .iter()
                            .zip(&b)
                            .map(|(&(alo, ahi), &(blo, bhi))| (alo.min(blo), ahi.max(bhi)))
                            .collect(),
                    });
                }
                (
                    range.expect("internal nodes have children"),
                    bounds.unwrap(),
                )
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn rebuild_collapsed(
        &self,
        node: usize,
        queries: &[&Query],
        reach_threshold: f64,
        min_queries: usize,
        depth: usize,
        out: &mut GridTree,
        spans: &mut Vec<std::ops::Range<usize>>,
    ) -> usize {
        out.depth = out.depth.max(depth);
        // Merging is only worthwhile for subtrees the new workload actually
        // exercises (`min_queries` mirrors the build-time stop criterion) —
        // a split kept alive by a single stray query costs that query
        // little, while merging would discard working layouts.
        let collapse =
            queries.len() >= min_queries && matches!(self.nodes[node], Node::Internal { .. }) && {
                let (leaves, reached) = self.leaf_reach(node, queries);
                let mean_reach = reached.iter().map(|&r| r as f64).sum::<f64>()
                    / (queries.len() * leaves.max(1)) as f64;
                mean_reach >= reach_threshold
            };
        match &self.nodes[node] {
            Node::Leaf { region } => {
                let new_region = out.regions.len();
                out.regions.push(self.regions[*region].clone());
                spans.push(*region..*region + 1);
                let id = out.nodes.len();
                out.nodes.push(Node::Leaf { region: new_region });
                id
            }
            Node::Internal { .. } if collapse => {
                let (span, bounds) = self.subtree_extent(node);
                let new_region = out.regions.len();
                out.regions.push(Region { bounds });
                spans.push(span);
                let id = out.nodes.len();
                out.nodes.push(Node::Leaf { region: new_region });
                id
            }
            Node::Internal {
                dim,
                splits,
                children,
            } => {
                let mut new_children = Vec::with_capacity(children.len());
                for (c, &child) in children.iter().enumerate() {
                    let child_queries: Vec<&Query> = queries
                        .iter()
                        .filter(|q| Self::reaches_child(q, *dim, splits, c))
                        .copied()
                        .collect();
                    new_children.push(self.rebuild_collapsed(
                        child,
                        &child_queries,
                        reach_threshold,
                        min_queries,
                        depth + 1,
                        out,
                        spans,
                    ));
                }
                let id = out.nodes.len();
                out.nodes.push(Node::Internal {
                    dim: *dim,
                    splits: splits.clone(),
                    children: new_children,
                });
                id
            }
        }
    }

    /// Returns a copy of the tree where leaf region `r` is replaced by the
    /// subtree `expansions[r]` (when present), renumbering regions in DFS
    /// order, plus, per new region, its provenance `(old region id,
    /// local region id within the expansion)` — `None` local id for leaves
    /// kept as-is.
    ///
    /// This is the second incremental re-optimization primitive (the inverse
    /// of [`GridTree::collapse_for`]): a *hot* region whose new query mix
    /// has internal skew is re-split by building a small Grid Tree over just
    /// that region's rows and grafting it in place, so the tree regains
    /// fresh-build quality exactly where the workload moved. Because leaves
    /// are numbered in DFS order, an expanded region's sub-regions occupy
    /// consecutive slices of the (contiguous) slice the old region owned.
    pub fn with_expanded_leaves(
        &self,
        expansions: &[Option<GridTree>],
    ) -> (GridTree, Vec<(usize, Option<usize>)>) {
        assert_eq!(expansions.len(), self.regions.len());
        let mut out = GridTree {
            nodes: Vec::new(),
            root: 0,
            regions: Vec::new(),
            depth: 0,
        };
        let mut provenance = Vec::new();
        out.root = self.rebuild_expanded(self.root, expansions, 0, &mut out, &mut provenance);
        (out, provenance)
    }

    fn rebuild_expanded(
        &self,
        node: usize,
        expansions: &[Option<GridTree>],
        depth: usize,
        out: &mut GridTree,
        provenance: &mut Vec<(usize, Option<usize>)>,
    ) -> usize {
        out.depth = out.depth.max(depth);
        match &self.nodes[node] {
            Node::Leaf { region } => match &expansions[*region] {
                None => {
                    let new_region = out.regions.len();
                    out.regions.push(self.regions[*region].clone());
                    provenance.push((*region, None));
                    let id = out.nodes.len();
                    out.nodes.push(Node::Leaf { region: new_region });
                    id
                }
                Some(sub) => sub.copy_subtree(sub.root, *region, depth, out, provenance),
            },
            Node::Internal {
                dim,
                splits,
                children,
            } => {
                let new_children: Vec<usize> = children
                    .iter()
                    .map(|&c| self.rebuild_expanded(c, expansions, depth + 1, out, provenance))
                    .collect();
                let id = out.nodes.len();
                out.nodes.push(Node::Internal {
                    dim: *dim,
                    splits: splits.clone(),
                    children: new_children,
                });
                id
            }
        }
    }

    /// Copies `self`'s subtree rooted at `node` into `out`, tagging emitted
    /// regions with `(old_region, Some(local id))` provenance.
    fn copy_subtree(
        &self,
        node: usize,
        old_region: usize,
        depth: usize,
        out: &mut GridTree,
        provenance: &mut Vec<(usize, Option<usize>)>,
    ) -> usize {
        out.depth = out.depth.max(depth);
        match &self.nodes[node] {
            Node::Leaf { region } => {
                let new_region = out.regions.len();
                out.regions.push(self.regions[*region].clone());
                provenance.push((old_region, Some(*region)));
                let id = out.nodes.len();
                out.nodes.push(Node::Leaf { region: new_region });
                id
            }
            Node::Internal {
                dim,
                splits,
                children,
            } => {
                let new_children: Vec<usize> = children
                    .iter()
                    .map(|&c| self.copy_subtree(c, old_region, depth + 1, out, provenance))
                    .collect();
                let id = out.nodes.len();
                out.nodes.push(Node::Internal {
                    dim: *dim,
                    splits: splits.clone(),
                    children: new_children,
                });
                id
            }
        }
    }

    /// Routes an *ingested* point to its region and widens that region's
    /// recorded bounds to cover it, returning the region id.
    ///
    /// Routing goes through the internal split values, which partition the
    /// whole value space — so a point outside the build-time data domain
    /// still lands in exactly one region. The leaf's recorded bounds,
    /// however, are clipped to the build-time domain, and both query routing
    /// ([`GridTree::regions_for_query`]) and region-scan exactness /
    /// residual elimination rely on them covering every stored row.
    /// Widening stays within the split constraints along split dimensions
    /// (the routed point satisfies them by construction), so regions remain
    /// disjoint there.
    pub fn absorb_point(&mut self, point: &[Value]) -> usize {
        let region = self.region_of_point(point);
        for (dim, bounds) in self.regions[region].bounds.iter_mut().enumerate() {
            bounds.0 = bounds.0.min(point[dim]);
            bounds.1 = bounds.1.max(point[dim]);
        }
        region
    }

    /// The region containing a point (every point maps to exactly one region).
    pub fn region_of_point(&self, point: &[Value]) -> usize {
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Leaf { region } => return *region,
                Node::Internal {
                    dim,
                    splits,
                    children,
                } => {
                    let child = splits.partition_point(|&s| s <= point[*dim]);
                    node = children[child];
                }
            }
        }
    }

    /// Approximate size of the tree structure in bytes (it is intentionally
    /// tiny compared to the per-region grids).
    pub fn size_bytes(&self) -> usize {
        let mut total = 0usize;
        for n in &self.nodes {
            total += match n {
                Node::Leaf { .. } => std::mem::size_of::<usize>(),
                Node::Internal {
                    splits, children, ..
                } => {
                    std::mem::size_of::<usize>()
                        + splits.len() * std::mem::size_of::<Value>()
                        + children.len() * std::mem::size_of::<usize>()
                }
            };
        }
        total += self
            .regions
            .iter()
            .map(|r| r.bounds.len() * 2 * std::mem::size_of::<Value>())
            .sum::<usize>();
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_types::cluster_query_types;
    use tsunami_core::{Predicate, Workload};

    /// Sales-over-time data like Fig 2: dim 0 is time (uniform over 0..4800),
    /// dim 1 is sales (uniform 0..10000).
    fn sales_data(n: usize) -> Dataset {
        Dataset::from_columns(vec![
            (0..n as u64).map(|v| v * 4800 / n as u64).collect(),
            (0..n as u64).map(|v| (v * 7919) % 10_000).collect(),
        ])
        .unwrap()
    }

    /// Fig 2's workload: Qr = one-year spans anywhere, Qg = one-month spans
    /// over the last year only.
    fn sales_workload() -> Workload {
        let mut qs = Vec::new();
        for i in 0..60u64 {
            let start = (i * 61) % 3600;
            qs.push(Query::count(vec![Predicate::range(0, start, start + 1200).unwrap()]).unwrap());
        }
        for i in 0..60u64 {
            let start = 3600 + (i * 17) % 1100;
            qs.push(Query::count(vec![Predicate::range(0, start, start + 100).unwrap()]).unwrap());
        }
        Workload::new(qs)
    }

    fn build_tree(data: &Dataset, workload: &Workload) -> (GridTree, Vec<RegionData>) {
        let config = TsunamiConfig::fast();
        let types = cluster_query_types(
            data,
            workload,
            config.dbscan_eps,
            config.dbscan_min_pts,
            500,
            1,
        );
        GridTree::build(data, &types, &config)
    }

    #[test]
    fn skewed_workload_produces_multiple_regions() {
        let data = sales_data(20_000);
        let workload = sales_workload();
        let (tree, regions) = build_tree(&data, &workload);
        assert!(
            tree.num_regions() >= 2,
            "skewed workload should split the space, got {} regions",
            tree.num_regions()
        );
        assert_eq!(tree.num_regions(), regions.len());
        assert!(tree.depth() >= 1);
        // One of the splits should be on the time dimension near 3600.
        let has_time_boundary = tree.regions().iter().any(|r| {
            (3000..=4200).contains(&r.bounds[0].0) || (3000..=4200).contains(&r.bounds[0].1)
        });
        assert!(has_time_boundary, "regions: {:?}", tree.regions());
    }

    #[test]
    fn regions_partition_all_rows_exactly_once() {
        let data = sales_data(10_000);
        let workload = sales_workload();
        let (tree, regions) = build_tree(&data, &workload);
        let total: usize = regions.iter().map(|r| r.rows.len()).sum();
        assert_eq!(total, data.len());
        // Every row's point maps back to the region that owns it.
        for (rid, rd) in regions.iter().enumerate() {
            for &row in rd.rows.iter().step_by(997) {
                let point = data.row(row);
                assert_eq!(tree.region_of_point(&point), rid);
            }
        }
    }

    #[test]
    fn region_bounds_are_disjoint_along_split_dims() {
        let data = sales_data(10_000);
        let workload = sales_workload();
        let (tree, _) = build_tree(&data, &workload);
        let regions = tree.regions();
        for i in 0..regions.len() {
            for j in (i + 1)..regions.len() {
                let overlap_all_dims = (0..2).all(|d| {
                    let (alo, ahi) = regions[i].bounds[d];
                    let (blo, bhi) = regions[j].bounds[d];
                    ahi >= blo && alo <= bhi
                });
                assert!(!overlap_all_dims, "regions {i} and {j} overlap");
            }
        }
    }

    #[test]
    fn query_traversal_finds_every_intersecting_region() {
        let data = sales_data(10_000);
        let workload = sales_workload();
        let (tree, _) = build_tree(&data, &workload);
        for q in workload.queries().iter().step_by(7) {
            let found = tree.regions_for_query(q);
            // Compare against brute force over region bounds.
            let expected: Vec<usize> = (0..tree.num_regions())
                .filter(|&r| tree.region(r).intersects(q))
                .collect();
            let mut found_sorted = found.clone();
            found_sorted.sort_unstable();
            assert_eq!(found_sorted, expected);
            assert!(!found.is_empty());
        }
    }

    #[test]
    fn uniform_workload_keeps_a_single_region() {
        let data = sales_data(5_000);
        // Perfectly uniform workload over time.
        let qs: Vec<Query> = (0..50u64)
            .map(|i| {
                Query::count(vec![Predicate::range(
                    0,
                    (i * 96) % 4800,
                    (i * 96) % 4800 + 96,
                )
                .unwrap()])
                .unwrap()
            })
            .collect();
        let (tree, _) = build_tree(&data, &Workload::new(qs));
        assert!(
            tree.num_regions() <= 3,
            "uniform workload should need few regions, got {}",
            tree.num_regions()
        );
    }

    #[test]
    fn empty_workload_is_one_region() {
        let data = sales_data(1_000);
        let (tree, regions) = GridTree::build(&data, &[], &TsunamiConfig::fast());
        assert_eq!(tree.num_regions(), 1);
        assert_eq!(regions[0].rows.len(), data.len());
        assert_eq!(tree.depth(), 0);
        assert!(tree.size_bytes() > 0);
    }

    #[test]
    fn absorb_point_routes_and_widens_bounds() {
        let data = sales_data(10_000);
        let workload = sales_workload();
        let (mut tree, _) = build_tree(&data, &workload);
        // A point far outside the build-time domain still routes to exactly
        // one region, whose bounds grow to cover it.
        let point = vec![1_000_000u64, 999_999];
        let rid = tree.absorb_point(&point);
        assert_eq!(rid, tree.region_of_point(&point));
        let bounds = &tree.region(rid).bounds;
        assert!(bounds[0].0 <= point[0] && point[0] <= bounds[0].1);
        assert!(bounds[1].0 <= point[1] && point[1] <= bounds[1].1);
        // A query matching only the new point now reaches its region.
        let q = Query::count(vec![
            Predicate::range(0, 900_000, 1_100_000).unwrap(),
            Predicate::range(1, 900_000, 1_100_000).unwrap(),
        ])
        .unwrap();
        assert!(tree.regions_for_query(&q).contains(&rid));
        // An in-domain point leaves its region's bounds unchanged.
        let inner = data.row(17);
        let inner_rid = tree.region_of_point(&inner);
        let before = tree.region(inner_rid).bounds.clone();
        tree.absorb_point(&inner);
        assert_eq!(tree.region(inner_rid).bounds, before);
    }

    #[test]
    fn region_containment_check() {
        let r = Region {
            bounds: vec![(10, 20), (0, 100)],
        };
        let q_contains = Query::count(vec![Predicate::range(0, 0, 50).unwrap()]).unwrap();
        let q_partial = Query::count(vec![Predicate::range(0, 15, 50).unwrap()]).unwrap();
        let q_miss = Query::count(vec![Predicate::range(0, 30, 50).unwrap()]).unwrap();
        assert!(r.contained_in(&q_contains));
        assert!(r.intersects(&q_partial) && !r.contained_in(&q_partial));
        assert!(!r.intersects(&q_miss));
    }
}
