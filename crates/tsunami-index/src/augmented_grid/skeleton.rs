//! Skeletons: the per-dimension partitioning strategies of an Augmented Grid
//! (§5.2).
//!
//! Each dimension uses one of three strategies:
//!
//! 1. **Independent** — partitioned uniformly in `CDF(X)` (what Flood does
//!    for every dimension).
//! 2. **Mapped** — removed from the grid; query filters over it are
//!    transformed into filters over a *target* dimension through a
//!    functional mapping (§5.2.1).
//! 3. **Conditional** — partitioned uniformly in `CDF(X | base)` using one
//!    CDF per partition of a *base* dimension (§5.2.2).
//!
//! Restrictions (from the paper, §5.2.1–§5.2.2): a target dimension cannot
//! itself be mapped; a base dimension cannot be mapped or dependent (so a
//! base is always an Independent dimension). At least one dimension must
//! remain in the grid.

use std::fmt;

/// Partitioning strategy of one dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimStrategy {
    /// Partition independently, uniformly in the dimension's own CDF.
    Independent,
    /// Remove from the grid; rewrite filters onto `target` via a functional
    /// mapping.
    Mapped {
        /// The dimension filters are rewritten onto.
        target: usize,
    },
    /// Partition uniformly in the CDF conditioned on `base`'s partition.
    Conditional {
        /// The base dimension whose partition selects the conditional CDF.
        base: usize,
    },
}

impl DimStrategy {
    /// Whether this strategy keeps the dimension in the grid.
    pub fn is_grid_dim(&self) -> bool {
        !matches!(self, DimStrategy::Mapped { .. })
    }
}

/// A full assignment of strategies to dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Skeleton {
    strategies: Vec<DimStrategy>,
}

impl Skeleton {
    /// The all-Independent skeleton (equivalent to Flood's grid).
    pub fn all_independent(num_dims: usize) -> Self {
        Self {
            strategies: vec![DimStrategy::Independent; num_dims],
        }
    }

    /// Creates a skeleton from explicit strategies. Returns `None` if the
    /// assignment violates the validity rules.
    pub fn new(strategies: Vec<DimStrategy>) -> Option<Self> {
        let s = Self { strategies };
        if s.is_valid() {
            Some(s)
        } else {
            None
        }
    }

    /// Creates a skeleton without validity checking (used internally by the
    /// optimizer before validation).
    pub fn new_unchecked(strategies: Vec<DimStrategy>) -> Self {
        Self { strategies }
    }

    /// Number of dimensions.
    pub fn num_dims(&self) -> usize {
        self.strategies.len()
    }

    /// The strategy of a dimension.
    pub fn strategy(&self, dim: usize) -> DimStrategy {
        self.strategies[dim]
    }

    /// All strategies.
    pub fn strategies(&self) -> &[DimStrategy] {
        &self.strategies
    }

    /// Replaces one dimension's strategy, returning a new skeleton (not
    /// validated).
    pub fn with_strategy(&self, dim: usize, strategy: DimStrategy) -> Self {
        let mut s = self.strategies.clone();
        s[dim] = strategy;
        Self { strategies: s }
    }

    /// The dimensions that participate in the grid, in ascending order.
    pub fn grid_dims(&self) -> Vec<usize> {
        (0..self.num_dims())
            .filter(|&d| self.strategies[d].is_grid_dim())
            .collect()
    }

    /// Number of mapped dimensions (functional mappings).
    pub fn num_mapped(&self) -> usize {
        self.strategies
            .iter()
            .filter(|s| matches!(s, DimStrategy::Mapped { .. }))
            .count()
    }

    /// Number of conditionally-partitioned dimensions (conditional CDFs).
    pub fn num_conditional(&self) -> usize {
        self.strategies
            .iter()
            .filter(|s| matches!(s, DimStrategy::Conditional { .. }))
            .count()
    }

    /// Checks the paper's validity restrictions.
    pub fn is_valid(&self) -> bool {
        let d = self.num_dims();
        if d == 0 {
            return false;
        }
        let mut has_grid_dim = false;
        for (dim, s) in self.strategies.iter().enumerate() {
            match *s {
                DimStrategy::Independent => has_grid_dim = true,
                DimStrategy::Mapped { target } => {
                    if target >= d || target == dim {
                        return false;
                    }
                    // A target dimension cannot itself be a mapped dimension.
                    if matches!(self.strategies[target], DimStrategy::Mapped { .. }) {
                        return false;
                    }
                }
                DimStrategy::Conditional { base } => {
                    has_grid_dim = true;
                    if base >= d || base == dim {
                        return false;
                    }
                    // A base dimension cannot be mapped or dependent, so it
                    // must be Independent.
                    if !matches!(self.strategies[base], DimStrategy::Independent) {
                        return false;
                    }
                }
            }
        }
        has_grid_dim
    }

    /// All valid skeletons reachable by changing the strategy of exactly one
    /// dimension ("one hop away", Table 2). Used by AGD's local search.
    pub fn neighbors(&self) -> Vec<Skeleton> {
        let d = self.num_dims();
        let mut out = Vec::new();
        for dim in 0..d {
            let mut candidates: Vec<DimStrategy> = vec![DimStrategy::Independent];
            for other in 0..d {
                if other != dim {
                    candidates.push(DimStrategy::Mapped { target: other });
                    candidates.push(DimStrategy::Conditional { base: other });
                }
            }
            for cand in candidates {
                if cand == self.strategies[dim] {
                    continue;
                }
                let s = self.with_strategy(dim, cand);
                if s.is_valid() {
                    out.push(s);
                }
            }
        }
        out
    }
}

impl fmt::Display for Skeleton {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .strategies
            .iter()
            .enumerate()
            .map(|(d, s)| match s {
                DimStrategy::Independent => format!("d{d}"),
                DimStrategy::Mapped { target } => format!("d{d}->d{target}"),
                DimStrategy::Conditional { base } => format!("d{d}|d{base}"),
            })
            .collect();
        write!(f, "[{}]", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_independent_is_valid() {
        let s = Skeleton::all_independent(4);
        assert!(s.is_valid());
        assert_eq!(s.grid_dims(), vec![0, 1, 2, 3]);
        assert_eq!(s.num_mapped(), 0);
        assert_eq!(s.num_conditional(), 0);
    }

    #[test]
    fn paper_example_skeleton_is_valid() {
        // [X, Y|X, Z] over dims X=0, Y=1, Z=2 (Table 2's example).
        let s = Skeleton::new(vec![
            DimStrategy::Independent,
            DimStrategy::Conditional { base: 0 },
            DimStrategy::Independent,
        ])
        .unwrap();
        assert!(s.is_valid());
        assert_eq!(s.grid_dims(), vec![0, 1, 2]);
        assert_eq!(s.num_conditional(), 1);
        assert_eq!(s.to_string(), "[d0, d1|d0, d2]");
    }

    #[test]
    fn mapping_to_a_mapped_dimension_is_invalid() {
        // Y -> X where X is itself mapped: invalid (target cannot be mapped).
        let s = Skeleton::new(vec![
            DimStrategy::Mapped { target: 2 },
            DimStrategy::Mapped { target: 0 },
            DimStrategy::Independent,
        ]);
        assert!(s.is_none());
    }

    #[test]
    fn conditional_base_must_be_independent() {
        // Base is mapped: invalid ([X->Z, Y|X, Z] from the paper's "not
        // allowed" example).
        let s = Skeleton::new(vec![
            DimStrategy::Mapped { target: 2 },
            DimStrategy::Conditional { base: 0 },
            DimStrategy::Independent,
        ]);
        assert!(s.is_none());
        // Base is itself dependent: also invalid.
        let s = Skeleton::new(vec![
            DimStrategy::Conditional { base: 2 },
            DimStrategy::Conditional { base: 0 },
            DimStrategy::Independent,
        ]);
        assert!(s.is_none());
    }

    #[test]
    fn at_least_one_grid_dimension_is_required() {
        let s = Skeleton::new(vec![
            DimStrategy::Mapped { target: 1 },
            DimStrategy::Mapped { target: 0 },
        ]);
        assert!(s.is_none());
        assert!(Skeleton::new(vec![]).is_none());
    }

    #[test]
    fn self_references_are_invalid() {
        assert!(Skeleton::new(vec![DimStrategy::Mapped { target: 0 }]).is_none());
        assert!(Skeleton::new(vec![
            DimStrategy::Conditional { base: 0 },
            DimStrategy::Independent
        ])
        .is_none());
    }

    #[test]
    fn neighbors_are_all_valid_and_one_hop_away() {
        let s = Skeleton::new(vec![
            DimStrategy::Independent,
            DimStrategy::Conditional { base: 0 },
            DimStrategy::Independent,
        ])
        .unwrap();
        let neighbors = s.neighbors();
        assert!(!neighbors.is_empty());
        for n in &neighbors {
            assert!(n.is_valid());
            let diff = (0..3).filter(|&d| n.strategy(d) != s.strategy(d)).count();
            assert_eq!(diff, 1, "neighbor {n} differs from {s} in {diff} dims");
        }
        // The all-independent skeleton is among the neighbors.
        assert!(neighbors.contains(&Skeleton::all_independent(3)));
    }

    #[test]
    fn neighbors_of_example_match_table2_count_spirit() {
        // Table 2 lists 6 one-hop skeletons for [X, Y|X, Z]; our neighbor set
        // is a superset restricted by validity (it also includes e.g. turning
        // Y independent), so it must contain at least those 6.
        let s = Skeleton::new(vec![
            DimStrategy::Independent,
            DimStrategy::Conditional { base: 0 },
            DimStrategy::Independent,
        ])
        .unwrap();
        assert!(s.neighbors().len() >= 6);
    }
}
