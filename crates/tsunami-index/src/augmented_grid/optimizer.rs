//! Optimizing an Augmented Grid's layout `(S, P)` (§5.3).
//!
//! The search space of skeletons is `O(d^d)`, so Tsunami uses **Adaptive
//! Gradient Descent (AGD)**: initialize `(S0, P0)` with heuristics, then
//! alternate (a) a numeric gradient-descent step over the partition counts
//! `P` and (b) a local search over skeletons one hop away from the current
//! one, both scored by the analytic cost model over a sample of the data and
//! the workload.
//!
//! For the Fig 12b comparison, this module also implements plain Gradient
//! Descent (no skeleton search), AGD with naive initialization (start from
//! the all-independent skeleton), and a black-box basin-hopping baseline.

use super::skeleton::{DimStrategy, Skeleton};
use super::AugmentedGrid;
use crate::config::TsunamiConfig;
use tsunami_core::sample::{sample_dataset, SplitMix};
use tsunami_core::{CostFeatures, CostModel, Dataset, Query, Workload};

/// Which optimization algorithm to use for the Augmented Grid (Fig 12b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerKind {
    /// Adaptive Gradient Descent with heuristic initialization (the paper's
    /// default).
    Adaptive,
    /// Gradient descent over `P` only; the skeleton never changes.
    GradientOnly,
    /// AGD started from the all-independent (naive) skeleton.
    AdaptiveNaiveInit,
    /// Basin-hopping black-box search over `(S, P)`.
    BlackBox,
}

/// The outcome of layout optimization.
#[derive(Debug, Clone)]
pub struct OptimizedLayout {
    /// Chosen skeleton.
    pub skeleton: Skeleton,
    /// Chosen per-dimension partition counts.
    pub partitions: Vec<usize>,
    /// Predicted average query cost (cost-model units) of the chosen layout.
    pub predicted_cost: f64,
    /// Number of candidate layouts evaluated.
    pub evaluations: usize,
}

/// Evaluates the predicted average query cost of a candidate layout by
/// building the Augmented Grid over the *sample* and pricing each query's
/// scan with the cost model, scaling scanned points to the full data size.
pub fn predicted_cost(
    sample: &Dataset,
    total_rows: usize,
    skeleton: &Skeleton,
    partitions: &[usize],
    workload: &Workload,
    cost: &CostModel,
) -> f64 {
    if workload.is_empty() || sample.is_empty() {
        return 0.0;
    }
    let (grid, _perm) = AugmentedGrid::build(sample, skeleton, partitions);
    let scale = total_rows as f64 / sample.len() as f64;
    let mut total = 0.0;
    for q in workload.queries() {
        total += cost.predict(&query_features(&grid, q, scale));
    }
    total / workload.len() as f64
}

fn query_features(grid: &AugmentedGrid, q: &Query, scale: f64) -> CostFeatures {
    let ranges = grid.ranges_for(q);
    let scanned: usize = ranges.iter().map(|(r, _)| r.len()).sum();
    CostFeatures {
        cell_ranges: ranges.len().max(1) as f64,
        scanned_points: scanned as f64 * scale,
        filtered_dims: q.num_filtered_dims().max(1) as f64,
    }
}

/// Heuristically initializes the skeleton (§5.3.2, step 1): for each
/// dimension `X`, use a functional mapping to `Y` if the fitted error bound
/// is below `fm_error_fraction` of `Y`'s domain; else partition with
/// `CDF(X | Y)` if more than `ccdf_empty_fraction` of the cells in the `XY`
/// hyperplane would be empty; else partition independently.
pub fn heuristic_skeleton(sample: &Dataset, config: &TsunamiConfig) -> Skeleton {
    let d = sample.num_dims();
    let mut strategies = vec![DimStrategy::Independent; d];
    if sample.len() < 16 {
        return Skeleton::new_unchecked(strategies);
    }

    for (dim, strategy) in strategies.iter_mut().enumerate() {
        // Candidate targets/bases, best-first.
        let mut best_fm: Option<(usize, f64)> = None;
        let mut best_ccdf: Option<(usize, f64)> = None;
        for other in 0..d {
            if other == dim {
                continue;
            }
            // Functional mapping dim -> other (other is the target).
            if let Some(fm) =
                tsunami_cdf::FunctionalMapping::fit(sample.column(dim), sample.column(other))
            {
                let domain = sample.domain(other).unwrap_or((0, 1));
                let width = (domain.1 - domain.0).max(1) as f64;
                let frac = fm.error_span() / width;
                if frac < config.fm_error_fraction && best_fm.is_none_or(|(_, f)| frac < f) {
                    best_fm = Some((other, frac));
                }
            }
            // Conditional CDF candidate: fraction of empty cells in the
            // (dim, other) hyperplane under independent partitioning.
            let empty = empty_cell_fraction(sample, dim, other, 16);
            if empty > config.ccdf_empty_fraction && best_ccdf.is_none_or(|(_, e)| empty > e) {
                best_ccdf = Some((other, empty));
            }
        }
        if let Some((target, _)) = best_fm {
            *strategy = DimStrategy::Mapped { target };
        } else if let Some((base, _)) = best_ccdf {
            *strategy = DimStrategy::Conditional { base };
        }
    }

    repair_skeleton(strategies)
}

/// Fraction of cells in the `dim x other` hyperplane (with `p x p`
/// equi-depth partitions) that contain no sample points. High emptiness means
/// the two dimensions are correlated and a conditional CDF would help.
pub fn empty_cell_fraction(sample: &Dataset, dim: usize, other: usize, p: usize) -> f64 {
    if sample.is_empty() {
        return 0.0;
    }
    use tsunami_cdf::CdfModel;
    let ma = tsunami_cdf::HistogramCdf::build(sample.column(dim), p);
    let mb = tsunami_cdf::HistogramCdf::build(sample.column(other), p);
    let mut occupied = vec![false; p * p];
    for r in 0..sample.len() {
        let a = ma.partition(sample.get(r, dim), p);
        let b = mb.partition(sample.get(r, other), p);
        occupied[a * p + b] = true;
    }
    let filled = occupied.iter().filter(|&&o| o).count();
    1.0 - filled as f64 / (p * p) as f64
}

/// Repairs an arbitrary strategy assignment into a valid skeleton by
/// downgrading offending dimensions to Independent (processing in order, so
/// earlier dimensions win conflicts).
pub fn repair_skeleton(mut strategies: Vec<DimStrategy>) -> Skeleton {
    let d = strategies.len();
    for dim in 0..d {
        match strategies[dim] {
            DimStrategy::Independent => {}
            DimStrategy::Mapped { target } => {
                if target >= d
                    || target == dim
                    || matches!(strategies[target], DimStrategy::Mapped { .. })
                {
                    strategies[dim] = DimStrategy::Independent;
                }
            }
            DimStrategy::Conditional { base } => {
                if base >= d || base == dim || !matches!(strategies[base], DimStrategy::Independent)
                {
                    strategies[dim] = DimStrategy::Independent;
                }
            }
        }
    }
    // Ensure at least one grid dimension.
    if !strategies.iter().any(DimStrategy::is_grid_dim) {
        if let Some(first) = strategies.first_mut() {
            *first = DimStrategy::Independent;
        }
    }
    Skeleton::new(strategies.clone()).unwrap_or_else(|| {
        // Extremely defensive fallback: all independent is always valid for d >= 1.
        Skeleton::all_independent(strategies.len().max(1))
    })
}

/// Initializes partition counts proportionally to the workload's average
/// filter selectivity per grid dimension (§5.3.2, step 1), within the cell
/// budget.
pub fn initial_partitions(
    sample: &Dataset,
    skeleton: &Skeleton,
    workload: &Workload,
    max_cells: usize,
) -> Vec<usize> {
    let d = sample.num_dims();
    let grid_dims = skeleton.grid_dims();
    let mut weights = vec![0.0f64; d];
    for &dim in &grid_dims {
        let mut sel_sum = 0.0;
        let mut count = 0usize;
        for q in workload.queries() {
            if q.predicate_on(dim).is_some() {
                sel_sum += q.dim_selectivity(sample, dim);
                count += 1;
            }
        }
        let avg = if count == 0 {
            1.0
        } else {
            sel_sum / count as f64
        };
        let freq = count as f64 / workload.len().max(1) as f64;
        weights[dim] = (1.0 / avg.max(1e-3)).ln().max(0.0) * freq + 1e-6;
    }
    let total_w: f64 = grid_dims.iter().map(|&d2| weights[d2]).sum();
    let log_budget = (max_cells.max(2) as f64).ln();
    let mut partitions = vec![1usize; d];
    if total_w > 0.0 {
        for &dim in &grid_dims {
            let share = weights[dim] / total_w;
            partitions[dim] = ((share * log_budget).exp().round() as usize).clamp(1, 4096);
        }
    }
    clamp_partitions(&mut partitions, &grid_dims, max_cells);
    partitions
}

fn clamp_partitions(partitions: &mut [usize], grid_dims: &[usize], max_cells: usize) {
    let max_cells = max_cells.max(1);
    loop {
        let product: usize = grid_dims
            .iter()
            .fold(1usize, |acc, &d| acc.saturating_mul(partitions[d]));
        if product <= max_cells {
            return;
        }
        if let Some(&max_dim) = grid_dims.iter().max_by_key(|&&d| partitions[d]) {
            if partitions[max_dim] <= 1 {
                return;
            }
            partitions[max_dim] = (partitions[max_dim] * 3 / 4).max(1);
        } else {
            return;
        }
    }
}

/// Optimizes the Augmented Grid layout for a dataset and workload.
pub fn optimize_layout(
    data: &Dataset,
    workload: &Workload,
    cost: &CostModel,
    config: &TsunamiConfig,
    kind: OptimizerKind,
) -> OptimizedLayout {
    optimize_layout_from(data, workload, cost, config, kind, None)
}

/// Like [`optimize_layout`], optionally *warm-started* from a known-good
/// layout — the incremental re-optimization path passes a region's current
/// `(S, P)` so a mild workload shift converges in few iterations instead of
/// re-deriving the skeleton from scratch. The warm start competes with the
/// heuristic initialization on predicted cost and the cheaper of the two
/// seeds the descent, so a stale layout can never make the outcome worse
/// than a cold start.
pub fn optimize_layout_from(
    data: &Dataset,
    workload: &Workload,
    cost: &CostModel,
    config: &TsunamiConfig,
    kind: OptimizerKind,
    warm: Option<(&Skeleton, &[usize])>,
) -> OptimizedLayout {
    let sample = sample_dataset(data, config.optimizer_sample_size, config.seed);
    let total_rows = data.len();
    let mut evaluations = 0usize;

    // Cap the number of queries used for cost evaluation: optimization cost
    // grows with |workload| x |candidate layouts|, and a modest subsample is
    // enough to rank layouts.
    const MAX_EVAL_QUERIES: usize = 64;
    let workload_small;
    let workload = if workload.len() > MAX_EVAL_QUERIES {
        let step = workload.len().div_ceil(MAX_EVAL_QUERIES);
        workload_small = Workload::new(
            workload
                .queries()
                .iter()
                .step_by(step)
                .cloned()
                .collect::<Vec<_>>(),
        );
        &workload_small
    } else {
        workload
    };

    let mut skeleton = match kind {
        OptimizerKind::AdaptiveNaiveInit => Skeleton::all_independent(data.num_dims()),
        _ => heuristic_skeleton(&sample, config),
    };
    let mut partitions =
        initial_partitions(&sample, &skeleton, workload, config.max_cells_per_grid);
    let mut best_cost = predicted_cost(&sample, total_rows, &skeleton, &partitions, workload, cost);
    evaluations += 1;

    // Warm start: price the caller's existing layout and keep it as the
    // starting point when it already beats the cold initialization.
    if let Some((warm_s, warm_p)) = warm {
        if warm_s.num_dims() == data.num_dims() && warm_s.is_valid() {
            let mut warm_p = warm_p.to_vec();
            warm_p.resize(data.num_dims(), 1);
            clamp_partitions(&mut warm_p, &warm_s.grid_dims(), config.max_cells_per_grid);
            let c = predicted_cost(&sample, total_rows, warm_s, &warm_p, workload, cost);
            evaluations += 1;
            if c < best_cost {
                best_cost = c;
                skeleton = warm_s.clone();
                partitions = warm_p;
            }
        }
    }

    if workload.is_empty() || sample.is_empty() {
        return OptimizedLayout {
            skeleton,
            partitions,
            predicted_cost: best_cost,
            evaluations,
        };
    }

    match kind {
        OptimizerKind::BlackBox => {
            let mut rng = SplitMix::new(config.seed ^ 0xB1ACB0);
            for _ in 0..config.blackbox_iters {
                let (cand_s, mut cand_p) =
                    random_perturbation(&skeleton, &partitions, &mut rng, data.num_dims());
                clamp_partitions(&mut cand_p, &cand_s.grid_dims(), config.max_cells_per_grid);
                let c = predicted_cost(&sample, total_rows, &cand_s, &cand_p, workload, cost);
                evaluations += 1;
                if c < best_cost {
                    best_cost = c;
                    skeleton = cand_s;
                    partitions = cand_p;
                }
            }
        }
        _ => {
            let search_skeletons = matches!(
                kind,
                OptimizerKind::Adaptive | OptimizerKind::AdaptiveNaiveInit
            );
            for _ in 0..config.optimizer_max_iters {
                let mut improved = false;

                // --- Step 2: gradient step over P ---
                let grid_dims = skeleton.grid_dims();
                for &dim in &grid_dims {
                    let candidates = [
                        (partitions[dim] as f64 * 1.5).ceil() as usize,
                        (partitions[dim] as f64 * 0.67).floor().max(1.0) as usize,
                        partitions[dim] + 1,
                        partitions[dim].saturating_sub(1).max(1),
                    ];
                    for &cand in &candidates {
                        if cand == partitions[dim] {
                            continue;
                        }
                        let mut trial = partitions.clone();
                        trial[dim] = cand;
                        clamp_partitions(&mut trial, &grid_dims, config.max_cells_per_grid);
                        let c =
                            predicted_cost(&sample, total_rows, &skeleton, &trial, workload, cost);
                        evaluations += 1;
                        if c < best_cost * 0.999 {
                            best_cost = c;
                            partitions = trial;
                            improved = true;
                        }
                    }
                }

                // --- Step 3: local search over skeletons one hop away ---
                if search_skeletons {
                    let mut best_neighbor: Option<(Skeleton, Vec<usize>, f64)> = None;
                    for neighbor in skeleton.neighbors() {
                        let mut trial_p = partitions.clone();
                        // Dimensions that just joined the grid get a default
                        // partition count; dimensions that left it drop to 1.
                        for (dim, p) in trial_p.iter_mut().enumerate() {
                            let was_grid = skeleton.strategy(dim).is_grid_dim();
                            let is_grid = neighbor.strategy(dim).is_grid_dim();
                            if is_grid && !was_grid {
                                *p = 8;
                            } else if !is_grid {
                                *p = 1;
                            }
                        }
                        clamp_partitions(
                            &mut trial_p,
                            &neighbor.grid_dims(),
                            config.max_cells_per_grid,
                        );
                        let c = predicted_cost(
                            &sample, total_rows, &neighbor, &trial_p, workload, cost,
                        );
                        evaluations += 1;
                        if c < best_cost * 0.999
                            && best_neighbor.as_ref().is_none_or(|&(_, _, bc)| c < bc)
                        {
                            best_neighbor = Some((neighbor, trial_p, c));
                        }
                    }
                    if let Some((s, p, c)) = best_neighbor {
                        skeleton = s;
                        partitions = p;
                        best_cost = c;
                        improved = true;
                    }
                }

                if !improved {
                    break;
                }
            }
        }
    }

    OptimizedLayout {
        skeleton,
        partitions,
        predicted_cost: best_cost,
        evaluations,
    }
}

/// One basin-hopping perturbation: change one dimension's strategy to a
/// random valid alternative and jitter all partition counts.
fn random_perturbation(
    skeleton: &Skeleton,
    partitions: &[usize],
    rng: &mut SplitMix,
    d: usize,
) -> (Skeleton, Vec<usize>) {
    let dim = rng.next_below(d as u64) as usize;
    let strategy = match rng.next_below(3) {
        0 => DimStrategy::Independent,
        1 => {
            let target = rng.next_below(d as u64) as usize;
            DimStrategy::Mapped {
                target: if target == dim {
                    (target + 1) % d
                } else {
                    target
                },
            }
        }
        _ => {
            let base = rng.next_below(d as u64) as usize;
            DimStrategy::Conditional {
                base: if base == dim { (base + 1) % d } else { base },
            }
        }
    };
    let candidate = skeleton.with_strategy(dim, strategy);
    let new_skeleton = if candidate.is_valid() {
        candidate
    } else {
        repair_skeleton(candidate.strategies().to_vec())
    };
    let new_partitions: Vec<usize> = partitions
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            if !new_skeleton.strategy(i).is_grid_dim() {
                1
            } else {
                let factor = 0.5 + rng.next_f64();
                ((p as f64 * factor).round() as usize).clamp(1, 4096)
            }
        })
        .collect();
    (new_skeleton, new_partitions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::sample::SplitMix;
    use tsunami_core::Predicate;

    /// x uniform; y tightly (linearly) correlated with x; z generically
    /// correlated with x; w independent.
    fn correlated_data(n: usize, seed: u64) -> Dataset {
        let mut rng = SplitMix::new(seed);
        let x: Vec<u64> = (0..n).map(|_| rng.next_below(100_000)).collect();
        let y: Vec<u64> = x.iter().map(|&v| 3 * v + 1_000 + (v % 53)).collect();
        let z: Vec<u64> = x.iter().map(|&v| v / 3 + (v * 7919) % 15_000).collect();
        let w: Vec<u64> = (0..n).map(|_| rng.next_below(100_000)).collect();
        Dataset::from_columns(vec![x, y, z, w]).unwrap()
    }

    fn workload(n: usize, seed: u64) -> Workload {
        let mut rng = SplitMix::new(seed);
        Workload::new(
            (0..n)
                .map(|i| {
                    let lo = rng.next_below(80_000);
                    match i % 3 {
                        0 => Query::count(vec![Predicate::range(0, lo, lo + 5_000).unwrap()])
                            .unwrap(),
                        1 => Query::count(vec![
                            Predicate::range(1, 3 * lo, 3 * (lo + 5_000)).unwrap(),
                            Predicate::range(3, lo, lo + 30_000).unwrap(),
                        ])
                        .unwrap(),
                        _ => Query::count(vec![
                            Predicate::range(2, lo / 3, lo / 3 + 8_000).unwrap(),
                            Predicate::range(0, lo, lo + 20_000).unwrap(),
                        ])
                        .unwrap(),
                    }
                })
                .collect(),
        )
    }

    #[test]
    fn heuristic_skeleton_detects_tight_and_generic_correlation() {
        let data = correlated_data(4_000, 91);
        let sample = sample_dataset(&data, 1_000, 1);
        let skeleton = heuristic_skeleton(&sample, &TsunamiConfig::fast());
        assert!(skeleton.is_valid());
        // Dimension 1 (tightly correlated with 0) should be mapped or at
        // least not independent; dimension 3 (independent) stays independent.
        assert!(
            skeleton.strategy(1) != DimStrategy::Independent,
            "dim 1 should exploit its correlation, got {skeleton}"
        );
        assert_eq!(skeleton.strategy(3), DimStrategy::Independent);
    }

    #[test]
    fn empty_cell_fraction_flags_correlated_pairs() {
        let data = correlated_data(4_000, 92);
        let corr = empty_cell_fraction(&data, 1, 0, 16);
        let indep = empty_cell_fraction(&data, 3, 0, 16);
        assert!(
            corr > 0.5,
            "correlated pair should leave many empty cells: {corr}"
        );
        assert!(
            indep < 0.3,
            "independent pair should fill most cells: {indep}"
        );
    }

    #[test]
    fn repair_skeleton_fixes_invalid_assignments() {
        // dim0 mapped to dim1, dim1 mapped to dim0: the second mapping must
        // be downgraded.
        let s = repair_skeleton(vec![
            DimStrategy::Mapped { target: 1 },
            DimStrategy::Mapped { target: 0 },
            DimStrategy::Conditional { base: 0 },
        ]);
        assert!(s.is_valid());
        // Everything mapped -> repaired to keep at least one grid dim.
        let s = repair_skeleton(vec![
            DimStrategy::Mapped { target: 1 },
            DimStrategy::Mapped { target: 0 },
        ]);
        assert!(s.is_valid());
        assert!(!s.grid_dims().is_empty());
    }

    #[test]
    fn agd_does_not_regress_from_initialization() {
        let data = correlated_data(5_000, 93);
        let w = workload(30, 94);
        let cost = CostModel::default();
        let config = TsunamiConfig::fast();
        let sample = sample_dataset(&data, config.optimizer_sample_size, config.seed);
        let init_s = heuristic_skeleton(&sample, &config);
        let init_p = initial_partitions(&sample, &init_s, &w, config.max_cells_per_grid);
        let init_cost = predicted_cost(&sample, data.len(), &init_s, &init_p, &w, &cost);

        let opt = optimize_layout(&data, &w, &cost, &config, OptimizerKind::Adaptive);
        assert!(opt.predicted_cost <= init_cost * 1.001);
        assert!(opt.skeleton.is_valid());
        assert!(opt.evaluations > 1);
    }

    #[test]
    fn agd_beats_or_matches_plain_gradient_descent() {
        let data = correlated_data(5_000, 95);
        let w = workload(30, 96);
        let cost = CostModel::default();
        let config = TsunamiConfig::fast();
        let agd = optimize_layout(&data, &w, &cost, &config, OptimizerKind::Adaptive);
        let gd = optimize_layout(&data, &w, &cost, &config, OptimizerKind::GradientOnly);
        assert!(agd.predicted_cost <= gd.predicted_cost * 1.05);
    }

    #[test]
    fn naive_init_agd_still_finds_a_valid_low_cost_layout() {
        let data = correlated_data(4_000, 97);
        let w = workload(24, 98);
        let cost = CostModel::default();
        let config = TsunamiConfig::fast();
        let agd_ni = optimize_layout(&data, &w, &cost, &config, OptimizerKind::AdaptiveNaiveInit);
        assert!(agd_ni.skeleton.is_valid());
        assert!(agd_ni.predicted_cost.is_finite());
    }

    #[test]
    fn blackbox_runs_within_iteration_budget() {
        let data = correlated_data(3_000, 99);
        let w = workload(18, 100);
        let config = TsunamiConfig::fast();
        let bb = optimize_layout(
            &data,
            &w,
            &CostModel::default(),
            &config,
            OptimizerKind::BlackBox,
        );
        assert!(bb.skeleton.is_valid());
        // Initial evaluation + one per basin-hopping iteration.
        assert!(bb.evaluations <= config.blackbox_iters + 1);
    }

    #[test]
    fn initial_partitions_respect_cell_budget_and_grid_dims() {
        let data = correlated_data(2_000, 101);
        let sample = sample_dataset(&data, 500, 1);
        let skeleton = Skeleton::new(vec![
            DimStrategy::Independent,
            DimStrategy::Mapped { target: 0 },
            DimStrategy::Conditional { base: 0 },
            DimStrategy::Independent,
        ])
        .unwrap();
        let w = workload(20, 102);
        let p = initial_partitions(&sample, &skeleton, &w, 1 << 10);
        assert_eq!(p[1], 1, "mapped dims get no partitions");
        let cells: usize = skeleton.grid_dims().iter().map(|&d| p[d]).product();
        assert!(cells <= 1 << 10);
    }

    #[test]
    fn empty_workload_short_circuits() {
        let data = correlated_data(1_000, 103);
        let opt = optimize_layout(
            &data,
            &Workload::default(),
            &CostModel::default(),
            &TsunamiConfig::fast(),
            OptimizerKind::Adaptive,
        );
        assert_eq!(opt.evaluations, 1);
        assert!(opt.skeleton.is_valid());
    }
}
