//! The Augmented Grid: a correlation-aware generalization of Flood's grid
//! (§5).
//!
//! An Augmented Grid is defined by a [`Skeleton`] (the per-dimension
//! partitioning strategies) and the per-dimension partition counts `P`.
//! Mapped dimensions are removed from the grid entirely; conditional
//! dimensions are partitioned with per-base-partition CDFs, which staggers
//! their boundaries and keeps cells equally sized under correlation.

pub mod optimizer;
pub mod skeleton;

pub use optimizer::{optimize_layout, optimize_layout_from, OptimizedLayout, OptimizerKind};
pub use skeleton::{DimStrategy, Skeleton};

use std::ops::Range;

use tsunami_cdf::{CdfModel, ConditionalCdf, FunctionalMapping, HistogramCdf};
use tsunami_core::{Dataset, Predicate, Query, Value};

/// Per-dimension effective filter ranges after the functional-mapping
/// rewrite, plus whether any mapped dimension is filtered (in which case no
/// cell can be exact).
type EffectiveRanges = (Vec<Option<(Value, Value)>>, bool);

/// The outcome of planning one query against an [`AugmentedGrid`]: the local
/// physical ranges to scan plus per-dimension predicate guarantees.
#[derive(Debug, Clone)]
pub struct GridRanges {
    /// Local `(row range, exact)` pairs in physical scan order.
    pub ranges: Vec<(Range<usize>, bool)>,
    /// `guaranteed[dim]` is true when the query's predicate on `dim` (if
    /// any) is satisfied by construction on *every* returned range — every
    /// visited partition of `dim` lies fully inside the predicate's value
    /// range — so the executor never needs to re-check it. Unfiltered
    /// dimensions are trivially guaranteed; filtered mapped dimensions never
    /// are (the mapping rewrite only over-approximates their filter).
    pub guaranteed: Vec<bool>,
    /// True when cell enumeration was abandoned because it would have cost
    /// more than scanning the region (see [`AugmentedGrid::plan_ranges`]):
    /// `ranges` is then the single whole-region range and `guaranteed` only
    /// reflects unfiltered dimensions. The owning index can usually do
    /// better — it knows the region's value bounds, which the grid does not.
    pub fallback: bool,
}

/// A built Augmented Grid over one region's data.
///
/// The grid stores only *local* row offsets (0-based within the region); the
/// owning index shifts them by the region's base offset in physical storage.
#[derive(Debug, Clone)]
pub struct AugmentedGrid {
    skeleton: Skeleton,
    /// Partition count per dimension (1 for mapped dimensions).
    partitions: Vec<usize>,
    /// Dimensions participating in the grid, ascending.
    grid_dims: Vec<usize>,
    /// Stride of each grid dimension in the cell numbering (parallel to
    /// `grid_dims`; the last grid dimension varies fastest).
    strides: Vec<usize>,
    num_cells: usize,
    /// Independent CDF model per dimension (present for Independent dims and
    /// for base dims of conditional CDFs).
    independent: Vec<Option<HistogramCdf>>,
    /// Conditional CDF per dependent dimension.
    conditional: Vec<Option<ConditionalCdf>>,
    /// Functional mapping per mapped dimension.
    mappings: Vec<Option<FunctionalMapping>>,
    /// `cell_offsets[c]..cell_offsets[c+1]` is the local row range of cell `c`.
    cell_offsets: Vec<usize>,
    num_rows: usize,
}

impl AugmentedGrid {
    /// Builds an Augmented Grid over `data` with the given skeleton and
    /// per-dimension partition counts. Returns the grid and the local row
    /// permutation (`perm[i]` = original row index stored at local slot `i`).
    pub fn build(data: &Dataset, skeleton: &Skeleton, partitions: &[usize]) -> (Self, Vec<usize>) {
        assert_eq!(skeleton.num_dims(), data.num_dims());
        assert_eq!(partitions.len(), data.num_dims());
        assert!(skeleton.is_valid(), "invalid skeleton {skeleton}");

        let d = data.num_dims();
        let partitions: Vec<usize> = (0..d)
            .map(|dim| {
                if skeleton.strategy(dim).is_grid_dim() {
                    partitions[dim].max(1)
                } else {
                    1
                }
            })
            .collect();

        // Fit per-dimension models.
        let mut independent: Vec<Option<HistogramCdf>> = vec![None; d];
        let mut conditional: Vec<Option<ConditionalCdf>> = vec![None; d];
        let mut mappings: Vec<Option<FunctionalMapping>> = vec![None; d];

        // Independent models first (bases need them). Partition counts are
        // aligned to the models' actual bucket counts so that partition
        // membership and partition value bounds agree exactly (required for
        // the exact-range scan optimization).
        let mut partitions = partitions;
        for dim in 0..d {
            let needs_independent = match skeleton.strategy(dim) {
                DimStrategy::Independent => true,
                DimStrategy::Conditional { .. } | DimStrategy::Mapped { .. } => false,
            } || (0..d)
                .any(|other| skeleton.strategy(other) == DimStrategy::Conditional { base: dim });
            if needs_independent {
                let model = HistogramCdf::build(data.column(dim), partitions[dim]);
                partitions[dim] = model.num_buckets();
                independent[dim] = Some(model);
            }
        }
        for dim in 0..d {
            match skeleton.strategy(dim) {
                DimStrategy::Independent => {}
                DimStrategy::Mapped { target } => {
                    mappings[dim] = FunctionalMapping::fit(data.column(dim), data.column(target));
                }
                DimStrategy::Conditional { base } => {
                    let base_model = independent[base]
                        .as_ref()
                        .expect("base dimension must have an independent model");
                    let base_parts: Vec<usize> = data
                        .column(base)
                        .iter()
                        .map(|&v| base_model.bucket_of(v))
                        .collect();
                    conditional[dim] = Some(ConditionalCdf::build(
                        &base_parts,
                        data.column(dim),
                        partitions[base],
                        partitions[dim],
                    ));
                }
            }
        }

        // Cell numbering over grid dimensions.
        let grid_dims = skeleton.grid_dims();
        let mut strides = vec![1usize; grid_dims.len()];
        for i in (0..grid_dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * partitions[grid_dims[i + 1]];
        }
        let num_cells: usize = grid_dims
            .iter()
            .map(|&gd| partitions[gd])
            .product::<usize>()
            .max(1);

        let mut grid = Self {
            skeleton: skeleton.clone(),
            partitions,
            grid_dims,
            strides,
            num_cells,
            independent,
            conditional,
            mappings,
            cell_offsets: Vec::new(),
            num_rows: data.len(),
        };

        // Assign rows to cells and counting-sort into the permutation.
        let mut counts = vec![0usize; num_cells + 1];
        let mut cell_of_row = vec![0usize; data.len()];
        let mut point = vec![0u64; d];
        for (r, row_cell) in cell_of_row.iter_mut().enumerate() {
            for (dim, coord) in point.iter_mut().enumerate() {
                *coord = data.get(r, dim);
            }
            let c = grid.cell_of(&point);
            *row_cell = c;
            counts[c + 1] += 1;
        }
        for c in 0..num_cells {
            counts[c + 1] += counts[c];
        }
        grid.cell_offsets = counts.clone();
        let mut next = counts;
        let mut perm = vec![0usize; data.len()];
        for (r, &c) in cell_of_row.iter().enumerate() {
            perm[next[c]] = r;
            next[c] += 1;
        }
        (grid, perm)
    }

    /// The skeleton in use.
    pub fn skeleton(&self) -> &Skeleton {
        &self.skeleton
    }

    /// Per-dimension partition counts (1 for mapped dimensions).
    pub fn partitions(&self) -> &[usize] {
        &self.partitions
    }

    /// Total number of grid cells.
    pub fn num_cells(&self) -> usize {
        self.num_cells
    }

    /// Number of rows indexed by this grid.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of functional mappings in use.
    pub fn num_functional_mappings(&self) -> usize {
        self.mappings.iter().filter(|m| m.is_some()).count()
    }

    /// Number of conditional CDFs in use.
    pub fn num_conditional_cdfs(&self) -> usize {
        self.conditional.iter().filter(|m| m.is_some()).count()
    }

    /// Partition of a dimension value given the (already determined) base
    /// partition for conditional dimensions.
    fn partition_of(&self, dim: usize, v: Value, base_part: Option<usize>) -> usize {
        match self.skeleton.strategy(dim) {
            DimStrategy::Independent => {
                self.independent[dim].as_ref().map_or(0, |m| m.bucket_of(v))
            }
            DimStrategy::Conditional { .. } => {
                let bp = base_part.unwrap_or(0);
                self.conditional[dim]
                    .as_ref()
                    .map_or(0, |m| m.bucket_of(bp, v))
            }
            DimStrategy::Mapped { .. } => 0,
        }
    }

    /// Cell id of a point.
    pub fn cell_of(&self, point: &[Value]) -> usize {
        let mut cell = 0usize;
        for (k, &dim) in self.grid_dims.iter().enumerate() {
            let part = match self.skeleton.strategy(dim) {
                DimStrategy::Conditional { base } => {
                    let bp = self.partition_of(base, point[base], None);
                    self.partition_of(dim, point[dim], Some(bp))
                }
                _ => self.partition_of(dim, point[dim], None),
            };
            cell += part * self.strides[k];
        }
        cell
    }

    /// Rewrites the query's predicates through the functional mappings: the
    /// returned vector holds, per dimension, the *effective* filter range
    /// used for partition-range computation. Returns `None` if a mapping
    /// proves the query empty on this grid. The boolean is true when any
    /// mapped dimension is filtered (in which case no cell can be exact).
    fn effective_predicates(&self, query: &Query) -> Option<EffectiveRanges> {
        let d = self.skeleton.num_dims();
        let mut eff: Vec<Option<(Value, Value)>> = vec![None; d];
        for p in query.predicates() {
            if p.dim < d {
                eff[p.dim] = Some((p.lo, p.hi));
            }
        }
        let mut mapped_filter = false;
        for dim in 0..d {
            if let DimStrategy::Mapped { target } = self.skeleton.strategy(dim) {
                if let Some((lo, hi)) = eff[dim] {
                    mapped_filter = true;
                    if let Some(fm) = &self.mappings[dim] {
                        let (xlo, xhi) = fm.map_range(lo, hi);
                        eff[target] = match eff[target] {
                            None => Some((xlo, xhi)),
                            Some((tlo, thi)) => {
                                let nlo = tlo.max(xlo);
                                let nhi = thi.min(xhi);
                                if nlo > nhi {
                                    return None;
                                }
                                Some((nlo, nhi))
                            }
                        };
                    }
                    eff[dim] = None;
                }
            }
        }
        Some((eff, mapped_filter))
    }

    /// Whether partition `part` of an independent/base dimension is fully
    /// contained in the original query predicate on that dimension
    /// ([`HistogramCdf::bucket_contained_in`] — conservative about a last
    /// boundary saturated at `u64::MAX`).
    fn independent_partition_exact(
        &self,
        dim: usize,
        part: usize,
        pred: Option<&Predicate>,
    ) -> bool {
        match pred {
            None => true,
            Some(p) => match &self.independent[dim] {
                None => false,
                Some(m) => m.bucket_contained_in(part, p.lo, p.hi),
            },
        }
    }

    fn conditional_partition_exact(
        &self,
        dim: usize,
        base_part: usize,
        part: usize,
        pred: Option<&Predicate>,
    ) -> bool {
        match pred {
            None => true,
            Some(p) => match &self.conditional[dim] {
                None => false,
                Some(m) => m.model_for(base_part).bucket_contained_in(part, p.lo, p.hi),
            },
        }
    }

    /// Computes the local physical row ranges (and exactness flags) a query
    /// must scan.
    pub fn ranges_for(&self, query: &Query) -> Vec<(Range<usize>, bool)> {
        self.plan_ranges(query).ranges
    }

    /// Like [`AugmentedGrid::ranges_for`], additionally reporting which
    /// dimensions' predicates the visited cells guarantee by construction
    /// (see [`GridRanges::guaranteed`]). The owning index uses this for
    /// residual-predicate elimination: guaranteed predicates never need
    /// re-checking inside the returned non-exact ranges.
    pub fn plan_ranges(&self, query: &Query) -> GridRanges {
        let d = self.skeleton.num_dims();
        let empty = GridRanges {
            ranges: Vec::new(),
            guaranteed: vec![true; d],
            fallback: false,
        };
        let Some((eff, mapped_filter)) = self.effective_predicates(query) else {
            // Proven empty: nothing is scanned, every predicate is trivially
            // guaranteed on the (empty) set of planned ranges.
            return empty;
        };

        // Enumerate intersecting cells. Base dimensions must be enumerated
        // before their dependents, so order grid dims: independents first.
        let mut order: Vec<usize> = Vec::with_capacity(self.grid_dims.len());
        for &gd in &self.grid_dims {
            if matches!(self.skeleton.strategy(gd), DimStrategy::Independent) {
                order.push(gd);
            }
        }
        for &gd in &self.grid_dims {
            if matches!(self.skeleton.strategy(gd), DimStrategy::Conditional { .. }) {
                order.push(gd);
            }
        }

        let stride_of = |dim: usize| -> usize {
            let k = self.grid_dims.iter().position(|&g| g == dim).unwrap();
            self.strides[k]
        };

        let mut cells: Vec<(usize, bool)> = Vec::new();
        // chosen[dim] = partition chosen for already-enumerated dims.
        let mut chosen: Vec<usize> = vec![0; d];
        // Union over emitted cells of the dims whose partition was not fully
        // contained in the original predicate (bit per dim; guarantee
        // tracking is skipped for >128-dim grids, which do not occur in
        // practice).
        let mut not_guaranteed: u128 = 0;
        // Planning must never cost more than the scan it prunes: a layout
        // mismatched to the query (e.g. a grid optimized for a previous
        // workload) can intersect far more cells than the region has rows,
        // at which point enumerating them is slower than just scanning the
        // region. Budget one enumeration step per stored row; on exhaustion
        // fall back to a single whole-region range with every filtered
        // dimension left residual.
        let mut budget = self.num_rows.max(64) as isize;
        self.enumerate_cells(
            &order,
            0,
            0,
            !mapped_filter,
            0,
            &eff,
            query,
            &stride_of,
            &mut chosen,
            &mut cells,
            &mut not_guaranteed,
            &mut budget,
        );
        if budget <= 0 {
            let guaranteed: Vec<bool> = (0..d)
                .map(|dim| query.predicate_on(dim).is_none())
                .collect();
            let ranges = if self.num_rows == 0 {
                Vec::new()
            } else {
                vec![(0..self.num_rows, false)]
            };
            return GridRanges {
                ranges,
                guaranteed,
                fallback: true,
            };
        }

        cells.sort_unstable_by_key(|&(c, _)| c);
        // Convert cells to physical ranges, merging physically adjacent ones
        // with identical exactness.
        let mut out: Vec<(Range<usize>, bool)> = Vec::new();
        for (cell, exact) in cells {
            let start = self.cell_offsets[cell];
            let end = self.cell_offsets[cell + 1];
            if start == end {
                continue;
            }
            if let Some((prev, prev_exact)) = out.last_mut() {
                if prev.end == start && *prev_exact == exact {
                    prev.end = end;
                    continue;
                }
            }
            out.push((start..end, exact));
        }

        let guaranteed: Vec<bool> = (0..d)
            .map(|dim| {
                if query.predicate_on(dim).is_none() {
                    return true;
                }
                // A filtered mapped dimension is removed from the grid and
                // its filter only over-approximated through the mapping: it
                // must always be re-checked. Beyond 128 dims the tracking
                // bitmask is too narrow; be conservative.
                if matches!(self.skeleton.strategy(dim), DimStrategy::Mapped { .. }) || d > 128 {
                    return false;
                }
                not_guaranteed & (1u128 << dim) == 0
            })
            .collect();
        GridRanges {
            ranges: out,
            guaranteed,
            fallback: false,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn enumerate_cells(
        &self,
        order: &[usize],
        idx: usize,
        cell_acc: usize,
        exact_acc: bool,
        inexact_dims: u128,
        eff: &[Option<(Value, Value)>],
        query: &Query,
        stride_of: &dyn Fn(usize) -> usize,
        chosen: &mut Vec<usize>,
        out: &mut Vec<(usize, bool)>,
        not_guaranteed: &mut u128,
        budget: &mut isize,
    ) {
        *budget -= 1;
        if *budget <= 0 {
            return;
        }
        if idx == order.len() {
            out.push((cell_acc, exact_acc));
            *not_guaranteed |= inexact_dims;
            return;
        }
        let dim = order[idx];
        let p = self.partitions[dim];
        let stride = stride_of(dim);
        let orig_pred = query.predicate_on(dim);
        let dim_bit = if dim < 128 { 1u128 << dim } else { 0 };

        match self.skeleton.strategy(dim) {
            DimStrategy::Independent => {
                let (lo_p, hi_p) = match eff[dim] {
                    None => (0, p - 1),
                    Some((lo, hi)) => self.independent[dim]
                        .as_ref()
                        .map_or((0, p - 1), |m| m.bucket_range(lo, hi)),
                };
                for part in lo_p..=hi_p {
                    chosen[dim] = part;
                    let dim_exact = self.independent_partition_exact(dim, part, orig_pred);
                    self.enumerate_cells(
                        order,
                        idx + 1,
                        cell_acc + part * stride,
                        exact_acc && dim_exact,
                        inexact_dims | if dim_exact { 0 } else { dim_bit },
                        eff,
                        query,
                        stride_of,
                        chosen,
                        out,
                        not_guaranteed,
                        budget,
                    );
                }
            }
            DimStrategy::Conditional { base } => {
                let base_part = chosen[base];
                let model = self.conditional[dim].as_ref();
                let (lo_p, hi_p, prune) = match (eff[dim], model) {
                    (None, _) => (0, p - 1, false),
                    (Some((lo, hi)), Some(m)) => {
                        if !m.may_contain(base_part, lo, hi) {
                            (0, 0, true)
                        } else {
                            let (a, b) = m.bucket_range(base_part, lo, hi);
                            (a, b, false)
                        }
                    }
                    (Some(_), None) => (0, p - 1, false),
                };
                if prune {
                    return;
                }
                for part in lo_p..=hi_p {
                    chosen[dim] = part;
                    let dim_exact =
                        self.conditional_partition_exact(dim, base_part, part, orig_pred);
                    self.enumerate_cells(
                        order,
                        idx + 1,
                        cell_acc + part * stride,
                        exact_acc && dim_exact,
                        inexact_dims | if dim_exact { 0 } else { dim_bit },
                        eff,
                        query,
                        stride_of,
                        chosen,
                        out,
                        not_guaranteed,
                        budget,
                    );
                }
            }
            DimStrategy::Mapped { .. } => unreachable!("mapped dims are not grid dims"),
        }
    }

    /// Size of the grid's models and lookup table in bytes.
    pub fn size_bytes(&self) -> usize {
        let models: usize = self
            .independent
            .iter()
            .flatten()
            .map(CdfModel::size_bytes)
            .sum::<usize>()
            + self
                .conditional
                .iter()
                .flatten()
                .map(ConditionalCdf::size_bytes)
                .sum::<usize>()
            + self
                .mappings
                .iter()
                .flatten()
                .map(FunctionalMapping::size_bytes)
                .sum::<usize>();
        models + self.cell_offsets.len() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::sample::SplitMix;
    use tsunami_core::{AggAccumulator, AggResult, Aggregation};

    /// Executes a query against a grid + the original dataset by scanning the
    /// produced ranges through the local permutation (test helper standing in
    /// for the column store).
    fn execute(grid: &AugmentedGrid, perm: &[usize], data: &Dataset, q: &Query) -> AggResult {
        let mut acc = AggAccumulator::new(q.aggregation());
        for (range, exact) in grid.ranges_for(q) {
            for local in range {
                let row = perm[local];
                let point = data.row(row);
                if exact || q.matches_point(&point) {
                    acc.add(0);
                }
            }
        }
        acc.finish()
    }

    fn correlated_data(n: usize, seed: u64) -> Dataset {
        let mut rng = SplitMix::new(seed);
        let x: Vec<u64> = (0..n).map(|_| rng.next_below(100_000)).collect();
        // y tightly correlated with x; z loosely correlated with x.
        let y: Vec<u64> = x.iter().map(|&v| 2 * v + 500 + (v % 97)).collect();
        let z: Vec<u64> = x.iter().map(|&v| v / 2 + (v * 7919) % 20_000).collect();
        Dataset::from_columns(vec![x, y, z]).unwrap()
    }

    fn queries(n: usize, seed: u64) -> Vec<Query> {
        let mut rng = SplitMix::new(seed);
        (0..n)
            .map(|i| {
                let dim = i % 3;
                let lo = rng.next_below(80_000);
                let width = 2_000 + rng.next_below(20_000);
                let (lo, hi) = match dim {
                    1 => (2 * lo + 500, 2 * (lo + width) + 500),
                    _ => (lo, lo + width),
                };
                Query::count(vec![Predicate::range(dim, lo, hi).unwrap()]).unwrap()
            })
            .collect()
    }

    #[test]
    fn all_independent_grid_matches_oracle() {
        let data = correlated_data(3_000, 71);
        let skeleton = Skeleton::all_independent(3);
        let (grid, perm) = AugmentedGrid::build(&data, &skeleton, &[8, 8, 4]);
        assert_eq!(grid.num_cells(), 8 * 8 * 4);
        for q in queries(20, 72) {
            assert_eq!(
                execute(&grid, &perm, &data, &q),
                q.execute_full_scan(&data),
                "{q:?}"
            );
        }
    }

    #[test]
    fn functional_mapping_grid_matches_oracle_and_drops_dimension() {
        let data = correlated_data(3_000, 73);
        // y (dim 1) is tightly correlated with x (dim 0): map it away.
        let skeleton = Skeleton::new(vec![
            DimStrategy::Independent,
            DimStrategy::Mapped { target: 0 },
            DimStrategy::Independent,
        ])
        .unwrap();
        let (grid, perm) = AugmentedGrid::build(&data, &skeleton, &[16, 1, 4]);
        assert_eq!(grid.num_cells(), 16 * 4);
        assert_eq!(grid.num_functional_mappings(), 1);
        for q in queries(30, 74) {
            assert_eq!(
                execute(&grid, &perm, &data, &q),
                q.execute_full_scan(&data),
                "{q:?}"
            );
        }
    }

    #[test]
    fn conditional_cdf_grid_matches_oracle() {
        let data = correlated_data(3_000, 75);
        // z (dim 2) is loosely correlated with x (dim 0): partition it
        // conditionally on x.
        let skeleton = Skeleton::new(vec![
            DimStrategy::Independent,
            DimStrategy::Independent,
            DimStrategy::Conditional { base: 0 },
        ])
        .unwrap();
        let (grid, perm) = AugmentedGrid::build(&data, &skeleton, &[8, 2, 8]);
        assert_eq!(grid.num_conditional_cdfs(), 1);
        for q in queries(30, 76) {
            assert_eq!(
                execute(&grid, &perm, &data, &q),
                q.execute_full_scan(&data),
                "{q:?}"
            );
        }
    }

    #[test]
    fn combined_skeleton_matches_oracle() {
        let data = correlated_data(2_000, 77);
        let skeleton = Skeleton::new(vec![
            DimStrategy::Independent,
            DimStrategy::Mapped { target: 0 },
            DimStrategy::Conditional { base: 0 },
        ])
        .unwrap();
        let (grid, perm) = AugmentedGrid::build(&data, &skeleton, &[12, 1, 6]);
        for q in queries(30, 78) {
            assert_eq!(
                execute(&grid, &perm, &data, &q),
                q.execute_full_scan(&data),
                "{q:?}"
            );
        }
        // Multi-dimensional query touching the mapped dimension and others.
        let q = Query::count(vec![
            Predicate::range(0, 10_000, 60_000).unwrap(),
            Predicate::range(1, 30_000, 90_000).unwrap(),
            Predicate::range(2, 0, 40_000).unwrap(),
        ])
        .unwrap();
        assert_eq!(execute(&grid, &perm, &data, &q), q.execute_full_scan(&data));
    }

    #[test]
    fn conditional_grid_scans_fewer_cells_than_independent_on_correlated_data() {
        let data = correlated_data(10_000, 79);
        let q = Query::count(vec![
            Predicate::range(0, 20_000, 40_000).unwrap(),
            Predicate::range(2, 10_000, 30_000).unwrap(),
        ])
        .unwrap();
        let indep = Skeleton::all_independent(3);
        let (gi, _pi) = AugmentedGrid::build(&data, &indep, &[16, 1, 16]);
        let cond = Skeleton::new(vec![
            DimStrategy::Independent,
            DimStrategy::Independent,
            DimStrategy::Conditional { base: 0 },
        ])
        .unwrap();
        let (gc, _pc) = AugmentedGrid::build(&data, &cond, &[16, 1, 16]);

        let scanned =
            |g: &AugmentedGrid| -> usize { g.ranges_for(&q).iter().map(|(r, _)| r.len()).sum() };
        assert!(
            scanned(&gc) <= scanned(&gi),
            "conditional CDF should not scan more points ({} vs {})",
            scanned(&gc),
            scanned(&gi)
        );
    }

    #[test]
    fn mapped_query_that_proves_empty_returns_no_ranges() {
        let data = correlated_data(1_000, 80);
        let skeleton = Skeleton::new(vec![
            DimStrategy::Independent,
            DimStrategy::Mapped { target: 0 },
            DimStrategy::Independent,
        ])
        .unwrap();
        let (grid, _) = AugmentedGrid::build(&data, &skeleton, &[8, 1, 2]);
        // Contradictory filters: y around small values but x restricted to
        // the top of its domain. The mapping y->x turns this into an empty
        // x-range intersection.
        let q = Query::count(vec![
            Predicate::range(0, 99_990, 100_000).unwrap(),
            Predicate::range(1, 500, 700).unwrap(),
        ])
        .unwrap();
        assert!(
            grid.ranges_for(&q).is_empty() || q.execute_full_scan(&data) == AggResult::Count(0)
        );
    }

    #[test]
    fn sum_aggregation_via_exact_ranges_is_consistent() {
        let data = correlated_data(2_000, 81);
        let skeleton = Skeleton::all_independent(3);
        let (grid, perm) = AugmentedGrid::build(&data, &skeleton, &[8, 4, 4]);
        let q = Query::new(
            vec![Predicate::range(0, 0, 50_000).unwrap()],
            Aggregation::Count,
        )
        .unwrap();
        // Count matching rows through exact + inexact ranges and compare.
        assert_eq!(execute(&grid, &perm, &data, &q), q.execute_full_scan(&data));
    }

    #[test]
    fn empty_dataset_builds_and_answers() {
        let data = Dataset::from_columns(vec![vec![], vec![]]).unwrap();
        let skeleton = Skeleton::all_independent(2);
        let (grid, perm) = AugmentedGrid::build(&data, &skeleton, &[4, 4]);
        assert!(perm.is_empty());
        let q = Query::count(vec![Predicate::range(0, 0, 10).unwrap()]).unwrap();
        assert!(grid.ranges_for(&q).is_empty());
        assert!(grid.size_bytes() > 0);
        assert_eq!(grid.num_rows(), 0);
    }
}
