//! The composed Tsunami index: Grid Tree over the data space, with an
//! independently-optimized Augmented Grid inside every region that receives
//! queries (§3).
//!
//! Besides the from-scratch [`TsunamiIndex::build`], the index supports
//! **incremental re-optimization** under workload shift (§8):
//! [`TsunamiIndex::reoptimize`] keeps the sorted data and adapts the
//! existing structure in place of a rebuild —
//!
//! 1. Grid-Tree splits the new workload no longer distinguishes are folded
//!    back ([`GridTree::collapse_for`]); a subtree's leaves occupy a
//!    contiguous slice of the store, so merging costs nothing physically.
//! 2. *Hot* regions — changed query-type mix (per-region
//!    [`WorkloadMonitor`] comparison), newly queried, or merged by the
//!    collapse — are re-split by building a local Grid Tree over just their
//!    rows and grafting it ([`GridTree::with_expanded_leaves`]).
//! 3. The Augmented-Grid optimizer runs only for hot leaves whose current
//!    layout prices as stale under the cost model; everything else keeps
//!    its grid — and its slice of the physical row order — verbatim.
//!
//! Re-optimization time is therefore proportional to how much of the
//! workload moved, not to the index size, and correctness never depends on
//! layout freshness.

use std::time::Instant;

use crate::augmented_grid::optimizer::{heuristic_skeleton, initial_partitions, predicted_cost};
use crate::augmented_grid::{
    optimize_layout, optimize_layout_from, AugmentedGrid, OptimizerKind, Skeleton,
};
use crate::config::{IndexVariant, TsunamiConfig};
use crate::cube::{CubeEntry, RegionCube};
use crate::grid_tree::GridTree;
use crate::query_types::cluster_query_types;
use crate::shift::WorkloadMonitor;
use tsunami_core::{
    BuildTiming, CostModel, Dataset, MultiDimIndex, Point, Query, Result, ScanPlan, ScanSource,
    TsunamiError, Workload,
};
use tsunami_store::ColumnStore;

/// Per-region physical layout information.
#[derive(Debug, Clone)]
struct RegionIndex {
    /// First physical row of the region in the reordered store.
    base: usize,
    /// Number of rows in the region.
    len: usize,
    /// The region's Augmented Grid, or `None` when no query intersects the
    /// region (it is then answered with a plain region scan).
    grid: Option<AugmentedGrid>,
    /// Rows ingested into the region since its layout was last optimized —
    /// the per-region staleness counter. Ingested rows are re-gridded into
    /// the existing layout immediately (correctness never waits), but the
    /// *layout* only re-earns optimizer time once `inserted / len` passes
    /// [`TsunamiConfig::ingest_region_staleness`].
    inserted: usize,
}

/// Statistics of an optimized Tsunami index (Table 4).
#[derive(Debug, Clone, PartialEq)]
pub struct TsunamiStats {
    /// Total Grid Tree nodes (internal + leaf).
    pub num_grid_tree_nodes: usize,
    /// Grid Tree depth.
    pub grid_tree_depth: usize,
    /// Number of leaf regions.
    pub num_leaf_regions: usize,
    /// Minimum points in a region.
    pub min_points_per_region: usize,
    /// Median points in a region.
    pub median_points_per_region: usize,
    /// Maximum points in a region.
    pub max_points_per_region: usize,
    /// Average number of functional mappings per indexed region.
    pub avg_fms_per_region: f64,
    /// Average number of conditional CDFs per indexed region.
    pub avg_ccdfs_per_region: f64,
    /// Total number of grid cells across all regions.
    pub total_grid_cells: usize,
}

/// Why [`TsunamiIndex::reoptimize_with_cost`] abandoned the incremental path
/// for a full rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Escalation {
    /// The dataset's shape (row count or width) no longer matches the data
    /// the index was built over, so region reuse would be unsound. Distinct
    /// from a plain rebuild so callers can tell "the data changed under me"
    /// from "the workload drifted": data changes flow through
    /// [`TsunamiIndex::ingest`] instead of a from-scratch reoptimize.
    DataChanged,
    /// The requested index variant differs from the built one.
    VariantChanged,
    /// Whole-workload frequency drift exceeded
    /// [`TsunamiConfig::reopt_rebuild_drift`].
    WorkloadDrift,
    /// The fraction of ingested rows exceeded
    /// [`TsunamiConfig::ingest_rebuild_staleness`]: too much of the data
    /// post-dates the Grid Tree for structure reuse to stay worthwhile.
    DataStaleness,
}

/// What [`TsunamiIndex::reoptimize_with_cost`] did to adapt the index to a
/// shifted workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ReoptReport {
    /// Total Grid-Tree leaf regions.
    pub regions_total: usize,
    /// Regions whose Augmented Grid was re-optimized (the *hot* regions).
    pub regions_reoptimized: usize,
    /// Regions whose existing layout (and physical row order) was kept
    /// verbatim.
    pub regions_kept: usize,
    /// Why the incremental path was abandoned for a full rebuild (`None`
    /// when it was not — see [`ReoptReport::escalated`] for the boolean
    /// view): see [`Escalation`].
    pub escalation: Option<Escalation>,
    /// Whole-workload frequency drift between the reference workload and the
    /// new one (0 = identical mix, 2 = fully disjoint mixes). NaN when the
    /// comparison was skipped because drift-based escalation is disabled
    /// ([`TsunamiConfig::reopt_rebuild_drift`] ≥ 2.0, the drift maximum) —
    /// fingerprinting two workloads costs two query-type clusterings, which
    /// the incremental path does not spend on a report-only number.
    pub frequency_drift: f64,
    /// The index's ingested-row fraction *before* re-optimization — the
    /// ingest staleness counter routed through the report, so the engine's
    /// autonomous loop can attribute a re-optimization to data drift.
    pub data_staleness: f64,
}

impl ReoptReport {
    /// Whether the cheap incremental path was abandoned for a full rebuild
    /// (equivalently: [`ReoptReport::escalation`] names a reason).
    pub fn escalated(&self) -> bool {
        self.escalation.is_some()
    }
}

/// What [`TsunamiIndex::ingest_with_cost`] did to absorb a batch of rows.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// Rows in the ingested batch.
    pub rows_ingested: usize,
    /// Regions that received at least one new row (only these paid re-grid
    /// and re-sort cost).
    pub regions_touched: usize,
    /// Touched regions whose accumulated staleness crossed
    /// [`TsunamiConfig::ingest_region_staleness`] and earned a local layout
    /// re-optimization (warm-started from the current layout).
    pub regions_reoptimized: usize,
    /// Whether the whole index escalated to a from-scratch rebuild — the
    /// batch would have pushed the ingested fraction past
    /// [`TsunamiConfig::ingest_rebuild_staleness`] (or the requested variant
    /// changed).
    pub rebuilt: bool,
    /// The whole-index ingested-row fraction including this batch, *before*
    /// any staleness was repaid by re-optimization or rebuild.
    pub data_staleness: f64,
}

/// What [`TsunamiIndex::delete_where_with_cost`] did to absorb a delete.
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteReport {
    /// Rows newly tombstoned by this delete (rows already deleted by an
    /// earlier call do not count again).
    pub rows_deleted: usize,
    /// Regions whose accumulated mutation fraction (inserted + tombstoned
    /// over region rows) crossed [`TsunamiConfig::ingest_region_staleness`]
    /// and were physically compacted — dead rows dropped, the region
    /// re-gridded over its live rows.
    pub regions_compacted: usize,
    /// Whether the whole index escalated to a from-scratch rebuild over the
    /// live rows (the delete pushed the mutated fraction past
    /// [`TsunamiConfig::ingest_rebuild_staleness`]).
    pub rebuilt: bool,
    /// The whole-index mutated-row fraction including this delete, *before*
    /// any staleness was repaid by compaction or rebuild.
    pub data_staleness: f64,
}

/// Tsunami: a learned multi-dimensional index robust to data correlation and
/// query skew.
#[derive(Debug)]
pub struct TsunamiIndex {
    tree: GridTree,
    regions: Vec<RegionIndex>,
    store: ColumnStore,
    timing: BuildTiming,
    name: String,
    variant: IndexVariant,
    /// The workload the current layout was optimized for — the reference the
    /// incremental re-optimization path diffs new workloads against.
    reference: Workload,
    /// Rows ingested since the Grid Tree was last derived from the data
    /// (build or incremental re-optimization) — the whole-index staleness
    /// counter behind [`TsunamiIndex::data_staleness`].
    ingested: usize,
    /// Per-region materialized aggregates (see [`crate::cube`]); entries are
    /// maintained incrementally across ingest/delete/reoptimize and folded
    /// lazily where a restructure dropped them.
    cube: RegionCube,
    /// Whether the planner answers fully-covered regions from the cube
    /// instead of scanning them. Defaults from `TSUNAMI_MATVIEW` at build
    /// (on unless `off|0|false|no`); toggle per index with
    /// [`TsunamiIndex::set_matview`]. Purely a performance switch — results
    /// are bit-identical either way.
    matview: bool,
}

/// The `TSUNAMI_MATVIEW` default: materialized region aggregates are on
/// unless explicitly disabled.
fn matview_env_enabled() -> bool {
    match std::env::var("TSUNAMI_MATVIEW") {
        Ok(v) => !matches!(
            v.to_ascii_lowercase().as_str(),
            "off" | "0" | "false" | "no"
        ),
        Err(_) => true,
    }
}

/// Queries counted by the exact set of dimensions they filter — the cheap
/// first-stage shift fingerprint (different dimension sets ⇒ different query
/// types, no clustering needed).
fn dims_mix(queries: &[Query]) -> std::collections::BTreeMap<Vec<usize>, usize> {
    let mut mix = std::collections::BTreeMap::new();
    for q in queries {
        *mix.entry(q.filtered_dims()).or_insert(0) += 1;
    }
    mix
}

/// The configuration and optimizer actually used for a variant: the
/// Grid-Tree-only ablation disables the correlation-aware strategies so its
/// per-region grids degenerate to Flood-style all-independent layouts.
fn effective_build_config(config: &TsunamiConfig) -> (TsunamiConfig, OptimizerKind) {
    match config.variant {
        IndexVariant::GridTreeOnly => {
            let mut c = config.clone();
            c.fm_error_fraction = 0.0;
            c.ccdf_empty_fraction = 1.1;
            (c, OptimizerKind::GradientOnly)
        }
        _ => (config.clone(), config.optimizer),
    }
}

impl TsunamiIndex {
    /// Builds a Tsunami index with the default configuration's structure but
    /// the provided config (convenience wrapper around
    /// [`TsunamiIndex::build_with_cost`] using a default [`CostModel`]).
    pub fn build(data: &Dataset, workload: &Workload, config: &TsunamiConfig) -> Result<Self> {
        Self::build_with_cost(data, workload, &CostModel::default(), config)
    }

    /// Builds a Tsunami index using an explicit cost model (e.g. one
    /// calibrated on the current machine).
    pub fn build_with_cost(
        data: &Dataset,
        workload: &Workload,
        cost: &CostModel,
        config: &TsunamiConfig,
    ) -> Result<Self> {
        if data.num_dims() == 0 {
            return Err(TsunamiError::Build("dataset has no dimensions".into()));
        }

        // ------------------------------------------------------------------
        // Offline optimization (Fig 9b "optimization time"):
        //   (1) cluster query types, (2) optimize the Grid Tree,
        //   (3) optimize each region's Augmented Grid layout.
        // ------------------------------------------------------------------
        let opt_start = Instant::now();
        let (effective_config, optimizer_kind) = effective_build_config(config);

        let types = if config.variant == IndexVariant::AugmentedGridOnly {
            Vec::new()
        } else {
            cluster_query_types(
                data,
                workload,
                effective_config.dbscan_eps,
                effective_config.dbscan_min_pts,
                effective_config.optimizer_sample_size,
                effective_config.seed,
            )
        };
        let (tree, region_data) = GridTree::build(data, &types, &effective_config);

        // Optimize a layout for every region that has intersecting queries.
        let mut layouts: Vec<Option<(Skeleton, Vec<usize>)>> =
            Vec::with_capacity(region_data.len());
        let mut region_datasets: Vec<Dataset> = Vec::with_capacity(region_data.len());
        for rd in &region_data {
            let region_ds = data.select_rows(&rd.rows);
            if rd.queries.is_empty() || rd.rows.is_empty() {
                layouts.push(None);
            } else {
                let region_workload = Workload::new(rd.queries.clone());
                let layout = optimize_layout(
                    &region_ds,
                    &region_workload,
                    cost,
                    &effective_config,
                    optimizer_kind,
                );
                layouts.push(Some((layout.skeleton, layout.partitions)));
            }
            region_datasets.push(region_ds);
        }
        let optimize_secs = opt_start.elapsed().as_secs_f64();

        // ------------------------------------------------------------------
        // Data organization (Fig 9b "data sorting time"): build each region's
        // grid over its full data and reorder the column store so regions
        // (and cells within regions) are contiguous.
        // ------------------------------------------------------------------
        let sort_start = Instant::now();
        let mut regions = Vec::with_capacity(region_data.len());
        let mut global_perm: Vec<usize> = Vec::with_capacity(data.len());
        for (rd, (region_ds, layout)) in region_data.iter().zip(region_datasets.iter().zip(layouts))
        {
            let base = global_perm.len();
            let grid = match layout {
                None => {
                    global_perm.extend_from_slice(&rd.rows);
                    None
                }
                Some((skeleton, partitions)) => {
                    let (grid, local_perm) =
                        AugmentedGrid::build(region_ds, &skeleton, &partitions);
                    global_perm.extend(local_perm.into_iter().map(|local| rd.rows[local]));
                    Some(grid)
                }
            };
            regions.push(RegionIndex {
                base,
                len: rd.rows.len(),
                grid,
                inserted: 0,
            });
        }
        let mut store = ColumnStore::from_dataset(data);
        store.permute(&global_perm);
        store.encode_blocks();
        let sort_secs = sort_start.elapsed().as_secs_f64();

        let name = match config.variant {
            IndexVariant::Full => "Tsunami",
            IndexVariant::GridTreeOnly => "GridTree-only",
            IndexVariant::AugmentedGridOnly => "AugmentedGrid-only",
        };

        let num_regions = regions.len();
        Ok(Self {
            tree,
            regions,
            store,
            timing: BuildTiming {
                sort_secs,
                optimize_secs,
            },
            name: name.to_string(),
            variant: config.variant,
            reference: workload.clone(),
            ingested: 0,
            cube: RegionCube::new(num_regions),
            matview: matview_env_enabled(),
        })
    }

    /// Incrementally re-optimizes the index for a shifted workload with the
    /// default cost model, discarding the [`ReoptReport`]. See
    /// [`TsunamiIndex::reoptimize_with_cost`].
    pub fn reoptimize(
        &self,
        data: &Dataset,
        new_workload: &Workload,
        config: &TsunamiConfig,
    ) -> Result<Self> {
        Ok(self
            .reoptimize_with_cost(data, new_workload, &CostModel::default(), config)?
            .0)
    }

    /// Incrementally re-optimizes the index for a shifted workload (§8).
    ///
    /// The sorted data and the Grid-Tree skeleton are reused. Both the
    /// reference workload (the one the current layout was optimized for) and
    /// `new_workload` are routed through the existing regions; a region is
    /// *hot* — and gets its Augmented Grid re-optimized, warm-started from
    /// its current layout — when a per-region [`WorkloadMonitor`] reports
    /// that its query-type mix changed, or when a previously unqueried
    /// region now receives queries. Cold regions keep their grids and their
    /// slice of the physical row order verbatim, so only hot regions pay
    /// optimizer and re-sort cost.
    ///
    /// A cheap fallback escalates to a full [`TsunamiIndex::build_with_cost`]
    /// when region reuse would be unsound (the data shape or the index
    /// variant changed) or when the whole-workload frequency drift exceeds
    /// [`TsunamiConfig::reopt_rebuild_drift`].
    ///
    /// Correctness never depends on the layout: stale, incrementally
    /// re-optimized, and freshly rebuilt indexes return identical results —
    /// only scan volume (and therefore latency) differs.
    pub fn reoptimize_with_cost(
        &self,
        data: &Dataset,
        new_workload: &Workload,
        cost: &CostModel,
        config: &TsunamiConfig,
    ) -> Result<(Self, ReoptReport)> {
        if data.num_dims() == 0 {
            return Err(TsunamiError::Build("dataset has no dimensions".into()));
        }
        for q in new_workload.queries() {
            q.validate_dims(data.num_dims())?;
        }

        // Escalation checks: region reuse is only sound over the same data
        // (same rows, same width) and the same component line-up; past the
        // ingest-staleness rebuild bar too much of the data post-dates the
        // Grid Tree; and beyond the configured drift the caller wants a
        // fresh Grid Tree as well. Each reason is reported distinctly — a
        // caller seeing `DataChanged` should be routing data changes through
        // [`TsunamiIndex::ingest`], not a workload reoptimize. The
        // whole-workload drift comparison costs two query-type clusterings,
        // so it is skipped — and the report carries NaN — when the
        // threshold (≥ 2.0, the drift maximum) can never trigger it.
        let data_staleness = self.data_staleness();
        // Live length, not physical: the caller hands us the logical (live)
        // dataset, which tombstoned-but-not-yet-compacted rows are absent
        // from. Comparing against the physical row count would spuriously
        // escalate every post-delete reoptimize as `DataChanged`.
        let escalation =
            if data.len() != self.store.live_len() || data.num_dims() != self.store.num_dims() {
                Some(Escalation::DataChanged)
            } else if config.variant != self.variant {
                Some(Escalation::VariantChanged)
            } else if data_staleness > config.ingest_rebuild_staleness {
                Some(Escalation::DataStaleness)
            } else {
                None
            };
        let global_report = if escalation.is_some() || config.reopt_rebuild_drift >= 2.0 {
            None
        } else {
            Some(WorkloadMonitor::new(data, &self.reference, config).observe(
                data,
                new_workload,
                config,
            ))
        };
        let global_drift = global_report
            .as_ref()
            .map_or(f64::NAN, |r| r.frequency_drift);
        let escalation = escalation.or_else(|| {
            (global_drift > config.reopt_rebuild_drift).then_some(Escalation::WorkloadDrift)
        });
        if let Some(reason) = escalation {
            let rebuilt = Self::build_with_cost(data, new_workload, cost, config)?;
            let regions_total = rebuilt.regions.len();
            return Ok((
                rebuilt,
                ReoptReport {
                    regions_total,
                    regions_reoptimized: regions_total,
                    regions_kept: 0,
                    escalation: Some(reason),
                    frequency_drift: global_drift,
                    data_staleness,
                },
            ));
        }

        // Nothing-shifted fast path: when the new workload's type mix matches
        // the reference — same filtered-dimension sets (cheap), and the
        // monitor's selectivity/frequency fingerprints agree — the current
        // layout is already optimized for it. Keep every region verbatim and
        // just adopt the new workload as the reference. Accumulated ingest
        // staleness disqualifies the shortcut: the mix may be unchanged, but
        // stale regions still owe the optimizer a pass below.
        let same_mix = data_staleness <= config.ingest_region_staleness
            && dims_mix(self.reference.queries()) == dims_mix(new_workload.queries())
            && {
                let report = global_report.unwrap_or_else(|| {
                    WorkloadMonitor::new(data, &self.reference, config).observe(
                        data,
                        new_workload,
                        config,
                    )
                });
                !report.reoptimize
            };
        if same_mix {
            let regions_total = self.regions.len();
            return Ok((
                Self {
                    tree: self.tree.clone(),
                    regions: self.regions.clone(),
                    store: self.store.clone(),
                    timing: BuildTiming::default(),
                    name: self.name.clone(),
                    variant: self.variant,
                    reference: new_workload.clone(),
                    ingested: self.ingested,
                    // Nothing moved: every region's live multiset — and with
                    // it every cube entry — carries verbatim.
                    cube: RegionCube::from_entries(self.cube.snapshot()),
                    matview: self.matview,
                },
                ReoptReport {
                    regions_total,
                    regions_reoptimized: 0,
                    regions_kept: regions_total,
                    escalation: None,
                    frequency_drift: global_drift,
                    data_staleness,
                },
            ));
        }

        // ------------------------------------------------------------------
        // Incremental optimization. First fold back the Grid-Tree splits the
        // new workload no longer distinguishes: splits that only served the
        // old workload's skew provide zero pruning now but tax every plan
        // with extra region visits. A subtree's leaves occupy a contiguous
        // slice of the store, so a merged region is just a wider slice.
        // Then route both workloads through the collapsed tree and
        // re-optimize only the hot regions. (The AugmentedGridOnly ablation
        // never assigns queries to its single region at build time — mirror
        // that here so re-optimization keeps its semantics instead of
        // silently growing a grid.)
        // ------------------------------------------------------------------
        let opt_start = Instant::now();
        let (effective_config, optimizer_kind) = effective_build_config(config);
        let route_queries: &[Query] = if config.variant == IndexVariant::AugmentedGridOnly {
            &[]
        } else {
            new_workload.queries()
        };
        // The same 1%-of-queries bar the from-scratch build uses to stop
        // splitting gates both tree merging and per-region optimizer work.
        let min_queries =
            ((new_workload.len() as f64 * config.min_region_query_fraction).ceil() as usize).max(1);
        let (tree, spans) = self.tree.collapse_for(
            route_queries,
            config.reopt_collapse_reach.clamp(0.0, 1.0),
            min_queries,
        );

        // Region skeletons for the collapsed tree: a span of one old region
        // keeps its base/len/grid; a merged span concatenates the old
        // regions' (adjacent) slices and must be re-laid-out.
        #[derive(Clone)]
        struct Candidate {
            base: usize,
            len: usize,
            /// The surviving grid (single-region spans only).
            grid: Option<AugmentedGrid>,
            /// Merged regions lost their old layouts and must be rebuilt.
            forced_hot: bool,
            /// Rows ingested since the span's layouts were last optimized.
            inserted: usize,
        }
        let candidates: Vec<Candidate> = spans
            .iter()
            .map(|span| {
                let olds = &self.regions[span.clone()];
                if olds.len() == 1 {
                    Candidate {
                        base: olds[0].base,
                        len: olds[0].len,
                        grid: olds[0].grid.clone(),
                        forced_hot: false,
                        inserted: olds[0].inserted,
                    }
                } else {
                    Candidate {
                        base: olds[0].base,
                        len: olds.iter().map(|r| r.len).sum(),
                        grid: None,
                        forced_hot: true,
                        inserted: olds.iter().map(|r| r.inserted).sum(),
                    }
                }
            })
            .collect();
        let num_regions = candidates.len();

        // Cube entries carried per candidate: a single-region span keeps its
        // entry; a merged span is the multiset union of its old regions'
        // entries (droppable to lazy re-fold if any constituent was unfolded).
        let old_entries = self.cube.snapshot();
        let carried_entries: Vec<Option<CubeEntry>> = spans
            .iter()
            .map(|span| {
                let mut acc: Option<CubeEntry> = None;
                for rid in span.clone() {
                    let e = old_entries.get(rid).cloned().flatten()?;
                    match &mut acc {
                        None => acc = Some(e),
                        Some(a) => a.merge(&e),
                    }
                }
                acc
            })
            .collect();

        let route = |w: &Workload| -> Vec<Vec<Query>> {
            let mut per_region: Vec<Vec<Query>> = vec![Vec::new(); num_regions];
            if config.variant != IndexVariant::AugmentedGridOnly {
                for q in w.queries() {
                    for rid in tree.regions_for_query(q) {
                        per_region[rid].push(q.clone());
                    }
                }
            }
            per_region
        };
        let ref_by_region = route(&self.reference);
        let new_by_region = route(new_workload);

        // A region is hot when its query mix changed: merged by the
        // collapse, previously unqueried but queried now, or a per-region
        // comparison reports type shift — first a cheap filtered-dimension
        // mix check (different dims ⇒ different types, no clustering
        // needed), then a full per-region WorkloadMonitor for same-dims
        // selectivity/frequency drift. Regions the new workload never
        // touches stay cold regardless of their old layout — an unused grid
        // is harmless.
        /// One leaf of a hot region's (possibly re-split) local structure:
        /// the rows it owns (indices into the hot region's dataset) and, when
        /// it has intersecting queries, its optimized Augmented Grid layout.
        struct LocalPart {
            rows: Vec<usize>,
            layout: Option<(Skeleton, Vec<usize>)>,
        }
        /// The optimizer's plan for one hot region.
        struct HotPlan {
            region_ds: Dataset,
            /// Local Grid Tree to graft when the region was re-split into
            /// more than one part.
            subtree: Option<GridTree>,
            parts: Vec<LocalPart>,
        }

        // A region only earns optimizer time when it matters to the new
        // workload (`min_queries` again). Rarely-hit regions answer through
        // their existing layout (or a plain region scan) — their
        // contribution to total latency is bounded by how rarely they are
        // hit. Merged regions always qualify: `collapse_for` only merges
        // subtrees with at least `min_queries` routed queries.
        let mut pending: Vec<Option<HotPlan>> = (0..num_regions).map(|_| None).collect();
        for rid in 0..num_regions {
            let candidate = &candidates[rid];
            let new_q = &new_by_region[rid];
            if candidate.len == 0 || new_q.is_empty() {
                continue;
            }
            // Ingest staleness forces a region hot the same way a merge does:
            // enough of its rows post-date the layout that the optimizer owes
            // it a pass regardless of how the query mix compares.
            let stale = candidate.inserted as f64 / candidate.len.max(1) as f64
                > config.ingest_region_staleness;
            let hot = (candidate.forced_hot
                || stale
                || match &candidate.grid {
                    None => true,
                    Some(_) => {
                        let ref_q = &ref_by_region[rid];
                        ref_q.is_empty()
                            || dims_mix(ref_q) != dims_mix(new_q)
                            || WorkloadMonitor::new(data, &Workload::new(ref_q.clone()), config)
                                .observe(data, &Workload::new(new_q.clone()), config)
                                .reoptimize
                    }
                })
                && new_q.len() >= min_queries;
            if !hot {
                continue;
            }
            let region_ds = self
                .store
                .slice_dataset(candidate.base..candidate.base + candidate.len);

            // Layout-fitness gate: a changed query *mix* does not imply the
            // physical layout is wrong for it. Before paying for gradient
            // descent, price the region's current layout on the new queries
            // against the heuristic initialization the optimizer would
            // otherwise start from; when the current layout is already
            // competitive, keep the region verbatim — descent would start
            // from it anyway and buy little.
            if let (false, false, Some(grid)) = (candidate.forced_hot, stale, &candidate.grid) {
                let sample = tsunami_core::sample::sample_dataset(
                    &region_ds,
                    effective_config.optimizer_sample_size,
                    effective_config.seed,
                );
                let eval: Workload = new_q
                    .iter()
                    .step_by(new_q.len().div_ceil(32))
                    .cloned()
                    .collect();
                let cost_cur = predicted_cost(
                    &sample,
                    candidate.len,
                    grid.skeleton(),
                    grid.partitions(),
                    &eval,
                    cost,
                );
                let init_s = heuristic_skeleton(&sample, &effective_config);
                let init_p = initial_partitions(
                    &sample,
                    &init_s,
                    &eval,
                    effective_config.max_cells_per_grid,
                );
                let cost_init =
                    predicted_cost(&sample, candidate.len, &init_s, &init_p, &eval, cost);
                if cost_cur <= cost_init * 1.1 {
                    continue;
                }
            }

            // Re-split the hot region for its new query mix: a local Grid
            // Tree over just this region's rows, with the global leaf-size
            // thresholds rescaled so grafting reproduces fresh-build
            // granularity. Most hot regions don't need a split and stay one
            // leaf.
            let mut local_config = effective_config.clone();
            local_config.min_region_point_fraction = (effective_config.min_region_point_fraction
                * data.len() as f64
                / candidate.len.max(1) as f64)
                .min(1.0);
            local_config.min_region_query_fraction = (effective_config.min_region_query_fraction
                * new_workload.len() as f64
                / new_q.len() as f64)
                .min(1.0);
            let local_types = cluster_query_types(
                &region_ds,
                &Workload::new(new_q.clone()),
                local_config.dbscan_eps,
                local_config.dbscan_min_pts,
                local_config.optimizer_sample_size,
                local_config.seed,
            );
            let (local_tree, local_data) = GridTree::build(&region_ds, &local_types, &local_config);

            let single_leaf = local_tree.num_regions() == 1;
            let parts: Vec<LocalPart> = local_data
                .into_iter()
                .map(|rd| {
                    let layout = if rd.queries.is_empty() || rd.rows.is_empty() {
                        None
                    } else {
                        // Warm-start a single-leaf region from its current
                        // layout (same rows, so the layout transfers
                        // losslessly); re-split parts cover different row
                        // sets, where transplanted layouts measurably
                        // mislead the descent — they start from the
                        // workload-aware heuristic instead.
                        let warm = if single_leaf {
                            candidate
                                .grid
                                .as_ref()
                                .map(|g| (g.skeleton().clone(), g.partitions().to_vec()))
                        } else {
                            None
                        };
                        let part_ds = region_ds.select_rows(&rd.rows);
                        let layout = optimize_layout_from(
                            &part_ds,
                            &Workload::new(rd.queries),
                            cost,
                            &effective_config,
                            optimizer_kind,
                            warm.as_ref().map(|(s, p)| (s, p.as_slice())),
                        );
                        Some((layout.skeleton, layout.partitions))
                    };
                    LocalPart {
                        rows: rd.rows,
                        layout,
                    }
                })
                .collect();
            pending[rid] = Some(HotPlan {
                region_ds,
                subtree: (!single_leaf).then_some(local_tree),
                parts,
            });
        }
        let optimize_secs = opt_start.elapsed().as_secs_f64();

        // ------------------------------------------------------------------
        // Data organization: graft re-split subtrees into the tree, rebuild
        // the hot regions' grids, and rewrite only their slices of the
        // (cloned) store; cold regions — layouts and physical order — are
        // untouched.
        // ------------------------------------------------------------------
        let sort_start = Instant::now();
        let expansions: Vec<Option<GridTree>> = pending
            .iter_mut()
            .map(|p| p.as_mut().and_then(|plan| plan.subtree.take()))
            .collect();
        let (tree, provenance) = tree.with_expanded_leaves(&expansions);

        let mut store = self.store.clone();
        let mut regions: Vec<RegionIndex> = Vec::with_capacity(provenance.len());
        let mut cube_entries: Vec<Option<CubeEntry>> = Vec::with_capacity(provenance.len());
        let mut reoptimized = 0usize;
        for (rid, plan) in pending.into_iter().enumerate() {
            let candidate = &candidates[rid];
            let Some(plan) = plan else {
                // Cold: layout, data order, region slice, and staleness all
                // unchanged.
                regions.push(RegionIndex {
                    base: candidate.base,
                    len: candidate.len,
                    grid: candidate.grid.clone(),
                    inserted: candidate.inserted,
                });
                cube_entries.push(carried_entries[rid].clone());
                continue;
            };
            // A single-part hot region only permutes rows *within* its slice
            // — aggregates are order-free, so its entry carries. A re-split
            // redistributes rows across new regions; those fold lazily.
            let single_part = plan.parts.len() == 1;
            // Lay the hot region's parts out back-to-back within its slice,
            // each sorted by its own grid's cell order.
            let mut region_perm: Vec<usize> = Vec::with_capacity(candidate.len);
            for part in plan.parts {
                let base = candidate.base + region_perm.len();
                let len = part.rows.len();
                let grid = match part.layout {
                    None => {
                        region_perm.extend_from_slice(&part.rows);
                        None
                    }
                    Some((skeleton, partitions)) => {
                        let part_ds = plan.region_ds.select_rows(&part.rows);
                        let (grid, local_perm) =
                            AugmentedGrid::build(&part_ds, &skeleton, &partitions);
                        region_perm.extend(local_perm.into_iter().map(|local| part.rows[local]));
                        // Only parts that actually got an optimized grid
                        // count as re-optimized; query-less parts of a
                        // re-split are plain region scans.
                        reoptimized += 1;
                        Some(grid)
                    }
                };
                regions.push(RegionIndex {
                    base,
                    len,
                    grid,
                    inserted: 0,
                });
                cube_entries.push(if single_part {
                    carried_entries[rid].clone()
                } else {
                    None
                });
            }
            debug_assert_eq!(region_perm.len(), candidate.len);
            store.permute_range(candidate.base, &region_perm);
        }
        store.encode_blocks();
        debug_assert_eq!(regions.len(), tree.num_regions());
        debug_assert_eq!(regions.len(), provenance.len());
        let sort_secs = sort_start.elapsed().as_secs_f64();

        let regions_total = regions.len();
        let report = ReoptReport {
            regions_total,
            regions_reoptimized: reoptimized,
            regions_kept: regions_total - reoptimized,
            escalation: None,
            frequency_drift: global_drift,
            data_staleness,
        };
        // Staleness that survived (cold regions' counters) stays on the
        // books; re-optimized regions just repaid theirs.
        let ingested = regions.iter().map(|r| r.inserted).sum();
        Ok((
            Self {
                tree,
                regions,
                store,
                timing: BuildTiming {
                    sort_secs,
                    optimize_secs,
                },
                name: self.name.clone(),
                variant: self.variant,
                reference: new_workload.clone(),
                ingested,
                cube: RegionCube::from_entries(cube_entries),
                matview: self.matview,
            },
            report,
        ))
    }

    /// Ingests a batch of rows with the default cost model. See
    /// [`TsunamiIndex::ingest_with_cost`].
    pub fn ingest(&self, rows: &[Point], config: &TsunamiConfig) -> Result<(Self, IngestReport)> {
        let batch = Dataset::from_rows(self.store.num_dims(), rows)?;
        self.ingest_with_cost(&batch, &CostModel::default(), config)
    }

    /// Absorbs new rows into the existing index **without a rebuild**.
    ///
    /// Each row is routed to its Grid-Tree region (widening the region's
    /// recorded bounds when the row falls outside the build-time domain) and
    /// appended into that region's contiguous slice of the store. Only the
    /// touched regions pay any cost: their Augmented Grids are *re-gridded*
    /// — per-dimension models re-fit over the merged rows (keeping bucket
    /// value bounds, and with them exactness and residual elimination,
    /// truthful for out-of-domain values) and just their slice re-sorted
    /// into cell order. Untouched regions keep their grids and physical
    /// order verbatim, so ingest cost is proportional to where the data
    /// landed, not to the index — and never includes the layout optimizer
    /// unless staleness escalates:
    ///
    /// * a touched region whose accumulated inserted-row fraction passes
    ///   [`TsunamiConfig::ingest_region_staleness`] gets its layout
    ///   re-optimized locally (warm-started from the current one);
    /// * the whole index escalates to a from-scratch
    ///   [`TsunamiIndex::build_with_cost`] over data + batch when the
    ///   ingested fraction would pass
    ///   [`TsunamiConfig::ingest_rebuild_staleness`].
    ///
    /// Correctness never depends on staleness: an ingested index returns
    /// results bit-identical to one rebuilt from the full dataset — only
    /// scan volume differs.
    pub fn ingest_with_cost(
        &self,
        rows: &Dataset,
        cost: &CostModel,
        config: &TsunamiConfig,
    ) -> Result<(Self, IngestReport)> {
        if rows.num_dims() != self.store.num_dims() {
            return Err(TsunamiError::DimensionMismatch {
                expected: self.store.num_dims(),
                got: rows.num_dims(),
            });
        }
        let n = self.store.len();
        let m = rows.len();
        if m == 0 {
            return Ok((
                Self {
                    tree: self.tree.clone(),
                    regions: self.regions.clone(),
                    store: self.store.clone(),
                    timing: BuildTiming::default(),
                    name: self.name.clone(),
                    variant: self.variant,
                    reference: self.reference.clone(),
                    ingested: self.ingested,
                    cube: RegionCube::from_entries(self.cube.snapshot()),
                    matview: self.matview,
                },
                IngestReport {
                    rows_ingested: 0,
                    regions_touched: 0,
                    regions_reoptimized: 0,
                    rebuilt: false,
                    data_staleness: self.data_staleness(),
                },
            ));
        }

        // Whole-index escalation: past the rebuild bar too much of the data
        // post-dates the Grid Tree for structure reuse to stay worthwhile
        // (and a changed variant invalidates every component anyway). The
        // rebuild consumes the merged dataset — physical store order, which
        // is as good as any for a from-scratch build.
        let staleness =
            (self.ingested + self.store.tombstones().deleted() + m) as f64 / (n + m) as f64;
        if config.variant != self.variant || staleness > config.ingest_rebuild_staleness {
            // Rebuild over the *live* rows plus the batch so tombstoned rows
            // are never resurrected by the merge.
            let mut cols = self.store.live_slice_dataset(0..n).into_columns();
            for (dim, col) in cols.iter_mut().enumerate() {
                col.extend_from_slice(rows.column(dim));
            }
            let merged = Dataset::from_columns(cols)?;
            let rebuilt = Self::build_with_cost(&merged, &self.reference, cost, config)?;
            let regions_touched = rebuilt.regions.len();
            return Ok((
                rebuilt,
                IngestReport {
                    rows_ingested: m,
                    regions_touched,
                    regions_reoptimized: regions_touched,
                    rebuilt: true,
                    data_staleness: staleness,
                },
            ));
        }

        let start = Instant::now();
        let (effective_config, optimizer_kind) = effective_build_config(config);

        // Route each new row to its region, widening recorded bounds so
        // query routing and region-scan exactness stay sound for
        // out-of-domain values.
        let mut tree = self.tree.clone();
        let mut per_region: Vec<Vec<usize>> = vec![Vec::new(); self.regions.len()];
        let mut point = vec![0u64; rows.num_dims()];
        for j in 0..m {
            for (dim, coord) in point.iter_mut().enumerate() {
                *coord = rows.get(j, dim);
            }
            per_region[tree.absorb_point(&point)].push(j);
        }

        // The reference workload routed through the (widened) tree — the
        // per-region workloads any staleness-escalated re-optimization
        // targets. Routing clones every query once per intersecting region,
        // so the common hot path (small batches, no region past its
        // staleness bar) skips it entirely. (The AugmentedGridOnly ablation
        // never assigns queries to its single region; mirror that.)
        let any_stale = self.variant != IndexVariant::AugmentedGridOnly
            && self.regions.iter().enumerate().any(|(rid, region)| {
                let news = per_region[rid].len();
                news > 0
                    && region.grid.is_some()
                    && (region.inserted + news) as f64 / (region.len + news) as f64
                        > config.ingest_region_staleness
            });
        let mut ref_by_region: Vec<Vec<Query>> = vec![Vec::new(); self.regions.len()];
        if any_stale {
            for q in self.reference.queries() {
                for rid in tree.regions_for_query(q) {
                    ref_by_region[rid].push(q.clone());
                }
            }
        }

        // Graft: append the batch at the store's tail, then permute it so
        // every region's slice is contiguous again (rows of untouched
        // regions only shift; their relative order is untouched).
        let mut store = self.store.clone();
        store.append_dataset(rows);
        let mut perm: Vec<usize> = Vec::with_capacity(n + m);
        let mut regions: Vec<RegionIndex> = Vec::with_capacity(self.regions.len());
        // Incremental cube maintenance: a touched region's new live multiset
        // is old ∪ routed rows, so its entry absorbs the batch as one folded
        // delta ([`CubeEntry::merge`]) — never a re-fold over the region.
        // Untouched regions carry; unfolded entries stay lazy.
        let mut cube_entries = self.cube.snapshot();
        for (rid, news) in per_region.iter().enumerate() {
            if news.is_empty() {
                continue;
            }
            if let Some(entry) = &mut cube_entries[rid] {
                entry.merge(&CubeEntry::fold_dataset(&rows.select_rows(news)));
            }
        }
        let mut regions_touched = 0usize;
        let mut regions_reoptimized = 0usize;
        let mut optimize_secs = 0.0f64;
        for (rid, region) in self.regions.iter().enumerate() {
            let news = &per_region[rid];
            let base = perm.len();
            let old_range = region.base..region.base + region.len;
            if news.is_empty() {
                perm.extend(old_range);
                regions.push(RegionIndex {
                    base,
                    len: region.len,
                    grid: region.grid.clone(),
                    inserted: region.inserted,
                });
                continue;
            }
            regions_touched += 1;
            let len = region.len + news.len();
            match &region.grid {
                None => {
                    // Query-less region (plain region scan): order within
                    // the slice is irrelevant, the new rows join at its tail.
                    perm.extend(old_range);
                    perm.extend(news.iter().map(|&j| n + j));
                    regions.push(RegionIndex {
                        base,
                        len,
                        grid: None,
                        inserted: region.inserted + news.len(),
                    });
                }
                Some(grid) => {
                    // The merged region rows (old slice + new rows), and the
                    // appended-store indices parallel to them.
                    let mut cols = self.store.slice_dataset(old_range.clone()).into_columns();
                    for (dim, col) in cols.iter_mut().enumerate() {
                        col.extend(news.iter().map(|&j| rows.get(j, dim)));
                    }
                    let region_ds = Dataset::from_columns(cols).expect("equal-length columns");
                    let indices: Vec<usize> =
                        old_range.chain(news.iter().map(|&j| n + j)).collect();

                    let inserted = region.inserted + news.len();
                    let stale = inserted as f64 / len as f64 > config.ingest_region_staleness;
                    let ref_q = &ref_by_region[rid];
                    let (skeleton, partitions, inserted) = if stale && !ref_q.is_empty() {
                        let t0 = Instant::now();
                        let layout = optimize_layout_from(
                            &region_ds,
                            &Workload::new(ref_q.clone()),
                            cost,
                            &effective_config,
                            optimizer_kind,
                            Some((grid.skeleton(), grid.partitions())),
                        );
                        optimize_secs += t0.elapsed().as_secs_f64();
                        regions_reoptimized += 1;
                        (layout.skeleton, layout.partitions, 0)
                    } else {
                        (
                            grid.skeleton().clone(),
                            grid.partitions().to_vec(),
                            inserted,
                        )
                    };
                    // Re-grid over the merged rows and re-sort only this
                    // region's slice into the grid's cell order.
                    let (grid, local_perm) =
                        AugmentedGrid::build(&region_ds, &skeleton, &partitions);
                    perm.extend(local_perm.into_iter().map(|local| indices[local]));
                    regions.push(RegionIndex {
                        base,
                        len,
                        grid: Some(grid),
                        inserted,
                    });
                }
            }
        }
        debug_assert_eq!(perm.len(), n + m);
        store.permute(&perm);
        store.encode_blocks();

        let ingested = regions.iter().map(|r| r.inserted).sum();
        let sort_secs = (start.elapsed().as_secs_f64() - optimize_secs).max(0.0);
        Ok((
            Self {
                tree,
                regions,
                store,
                timing: BuildTiming {
                    sort_secs,
                    optimize_secs,
                },
                name: self.name.clone(),
                variant: self.variant,
                reference: self.reference.clone(),
                ingested,
                cube: RegionCube::from_entries(cube_entries),
                matview: self.matview,
            },
            IngestReport {
                rows_ingested: m,
                regions_touched,
                regions_reoptimized,
                rebuilt: false,
                data_staleness: staleness,
            },
        ))
    }

    /// Tombstones the rows matching `query`'s predicates with the default
    /// cost model. See [`TsunamiIndex::delete_where_with_cost`].
    pub fn delete_where(
        &self,
        query: &Query,
        config: &TsunamiConfig,
    ) -> Result<(Self, DeleteReport)> {
        self.delete_where_with_cost(query, &CostModel::default(), config)
    }

    /// Deletes the rows matching `query`'s predicates **without a rebuild**.
    ///
    /// Deleted rows are tombstoned in the store's deletion bitmap; every
    /// kernel tier masks liveness into its selections, so results are
    /// immediately exact while the physical layout — and every region's grid
    /// — stays untouched. Tombstones then feed the same staleness machinery
    /// as ingest:
    ///
    /// * a region whose mutation fraction (inserted + tombstoned over region
    ///   rows) passes [`TsunamiConfig::ingest_region_staleness`] is
    ///   *compacted*: its dead rows are physically dropped and the region is
    ///   re-gridded over its live rows with its existing layout (subsequent
    ///   regions shift down — their grids and relative order are untouched);
    /// * the whole index escalates to a from-scratch
    ///   [`TsunamiIndex::build_with_cost`] over the live rows when the
    ///   mutated fraction passes
    ///   [`TsunamiConfig::ingest_rebuild_staleness`].
    ///
    /// Correctness never depends on compaction: a tombstoned index returns
    /// results bit-identical to one rebuilt from the live rows — only scan
    /// volume differs.
    pub fn delete_where_with_cost(
        &self,
        query: &Query,
        cost: &CostModel,
        config: &TsunamiConfig,
    ) -> Result<(Self, DeleteReport)> {
        query.validate_dims(self.store.num_dims())?;
        let mut store = self.store.clone();
        let rows_deleted = store.delete_where(query);
        let n = store.len();
        let staleness = (self.ingested + store.tombstones().deleted()) as f64 / n.max(1) as f64;
        if rows_deleted == 0 {
            return Ok((
                Self {
                    tree: self.tree.clone(),
                    regions: self.regions.clone(),
                    store,
                    timing: BuildTiming::default(),
                    name: self.name.clone(),
                    variant: self.variant,
                    reference: self.reference.clone(),
                    ingested: self.ingested,
                    // No new tombstones: every live multiset is unchanged.
                    cube: RegionCube::from_entries(self.cube.snapshot()),
                    matview: self.matview,
                },
                DeleteReport {
                    rows_deleted: 0,
                    regions_compacted: 0,
                    rebuilt: false,
                    data_staleness: staleness,
                },
            ));
        }

        // Whole-index escalation: past the rebuild bar too much of the data
        // post-dates (or no longer belongs to) the Grid Tree for structure
        // reuse to stay worthwhile. The rebuild consumes only the live rows,
        // so tombstones are physically gone afterwards.
        if staleness > config.ingest_rebuild_staleness {
            let live = store.live_slice_dataset(0..n);
            let rebuilt = Self::build_with_cost(&live, &self.reference, cost, config)?;
            let regions_compacted = rebuilt.regions.len();
            return Ok((
                rebuilt,
                DeleteReport {
                    rows_deleted,
                    regions_compacted,
                    rebuilt: true,
                    data_staleness: staleness,
                },
            ));
        }

        // Cube maintenance: exactly the regions whose tombstone count grew
        // lost live rows — drop their entries (re-folded lazily on the next
        // covered query). Everything else carries: the compaction below only
        // removes already-dead rows and permutes within regions, neither of
        // which changes a live multiset. Compared at the *old* bases, before
        // compaction shifts them.
        let mut cube_entries = self.cube.snapshot();
        for (rid, region) in self.regions.iter().enumerate() {
            let old_range = region.base..region.base + region.len;
            let before = self.store.tombstones().count_deleted_in(old_range.clone());
            let after = store.tombstones().count_deleted_in(old_range);
            if after != before {
                cube_entries[rid] = None;
            }
        }

        // Per-region compaction: regions past the staleness bar drop their
        // dead rows and re-grid over the survivors (keeping their optimized
        // skeleton/partitions — compaction repays *physical* staleness, the
        // layout only re-earns optimizer time through reoptimize/ingest).
        // Rows after a compacted region shift down; bases are re-derived.
        let start = Instant::now();
        let mut regions: Vec<RegionIndex> = Vec::with_capacity(self.regions.len());
        let mut regions_compacted = 0usize;
        let mut shift = 0usize;
        for region in &self.regions {
            let base = region.base - shift;
            let range = base..base + region.len;
            let dead = store.tombstones().count_deleted_in(range.clone());
            let frac = (region.inserted + dead) as f64 / region.len.max(1) as f64;
            if dead == 0 || frac <= config.ingest_region_staleness {
                regions.push(RegionIndex {
                    base,
                    len: region.len,
                    grid: region.grid.clone(),
                    inserted: region.inserted,
                });
                continue;
            }
            let removed = store.drop_deleted_in(range);
            debug_assert_eq!(removed, dead);
            shift += removed;
            regions_compacted += 1;
            let len = region.len - removed;
            let grid = match &region.grid {
                Some(grid) if len > 0 => {
                    // Re-grid the survivors into the existing layout and
                    // re-sort only this region's slice into cell order.
                    let region_ds = store.slice_dataset(base..base + len);
                    let (grid, local_perm) =
                        AugmentedGrid::build(&region_ds, grid.skeleton(), grid.partitions());
                    store.permute_range(base, &local_perm);
                    Some(grid)
                }
                _ => None,
            };
            regions.push(RegionIndex {
                base,
                len,
                grid,
                inserted: region.inserted,
            });
        }
        store.encode_blocks();
        debug_assert_eq!(store.len(), n - shift);

        Ok((
            Self {
                tree: self.tree.clone(),
                regions,
                store,
                timing: BuildTiming {
                    sort_secs: start.elapsed().as_secs_f64(),
                    optimize_secs: 0.0,
                },
                name: self.name.clone(),
                variant: self.variant,
                reference: self.reference.clone(),
                ingested: self.ingested,
                cube: RegionCube::from_entries(cube_entries),
                matview: self.matview,
            },
            DeleteReport {
                rows_deleted,
                regions_compacted,
                rebuilt: false,
                data_staleness: staleness,
            },
        ))
    }

    /// The fraction of stored rows mutated — ingested or tombstoned — since
    /// the Grid Tree was last derived from the data (and not yet repaid with
    /// optimizer attention or compaction) — the data-drift signal the
    /// engine's autonomous re-optimization loop watches, mirroring its
    /// workload-drift monitor.
    pub fn data_staleness(&self) -> f64 {
        (self.ingested + self.store.tombstones().deleted()) as f64 / self.store.len().max(1) as f64
    }

    /// Number of live (non-tombstoned) rows the index answers over.
    pub fn live_len(&self) -> usize {
        self.store.live_len()
    }

    /// Enables or disables answering fully-covered regions from the
    /// materialized region cube (see [`crate::cube`]). Purely a performance
    /// switch — results are bit-identical either way — exposed so benchmarks
    /// and differential tests can compare both paths without racing on the
    /// `TSUNAMI_MATVIEW` environment variable. Rebuild escalations re-read
    /// the environment default.
    pub fn set_matview(&mut self, on: bool) {
        self.matview = on;
    }

    /// Whether the planner currently answers covered regions from the cube.
    pub fn matview_enabled(&self) -> bool {
        self.matview
    }

    /// The Grid Tree component.
    pub fn grid_tree(&self) -> &GridTree {
        &self.tree
    }

    /// Index statistics in the shape of the paper's Table 4.
    pub fn stats(&self) -> TsunamiStats {
        let mut points: Vec<usize> = self.regions.iter().map(|r| r.len).collect();
        points.sort_unstable();
        let indexed: Vec<&AugmentedGrid> = self
            .regions
            .iter()
            .filter_map(|r| r.grid.as_ref())
            .collect();
        let n_indexed = indexed.len().max(1);
        TsunamiStats {
            num_grid_tree_nodes: self.tree.num_nodes(),
            grid_tree_depth: self.tree.depth(),
            num_leaf_regions: self.tree.num_regions(),
            min_points_per_region: points.first().copied().unwrap_or(0),
            median_points_per_region: points.get(points.len() / 2).copied().unwrap_or(0),
            max_points_per_region: points.last().copied().unwrap_or(0),
            avg_fms_per_region: indexed
                .iter()
                .map(|g| g.num_functional_mappings() as f64)
                .sum::<f64>()
                / n_indexed as f64,
            avg_ccdfs_per_region: indexed
                .iter()
                .map(|g| g.num_conditional_cdfs() as f64)
                .sum::<f64>()
                / n_indexed as f64,
            total_grid_cells: indexed.iter().map(|g| g.num_cells()).sum(),
        }
    }

    /// Total number of grid cells across regions (Table 4).
    pub fn total_cells(&self) -> usize {
        self.stats().total_grid_cells
    }
}

impl MultiDimIndex for TsunamiIndex {
    fn name(&self) -> &str {
        &self.name
    }

    fn source(&self) -> &dyn ScanSource {
        &self.store
    }

    fn plan(&self, query: &Query) -> ScanPlan {
        let d = self.store.num_dims();
        let mut plan = ScanPlan::new();
        // Residual elimination: a predicate needs re-checking only if *some*
        // planned region fails to guarantee it by construction (through its
        // grid's visited partitions, or through the Grid Tree region bounds
        // for unindexed regions).
        let mut guaranteed = vec![true; d];
        // A whole-region scan (no grid, or the grid's cell enumeration fell
        // back because it would cost more than the scan): plan the region as
        // one range, with exactness and guarantees derived from the
        // Grid-Tree region bounds.
        let plan_region_scan =
            |plan: &mut ScanPlan, guaranteed: &mut Vec<bool>, region_id: usize| {
                let region = &self.regions[region_id];
                let tree_region = self.tree.region(region_id);
                let exact = tree_region.contained_in(query);
                plan.push(region.base..region.base + region.len, exact);
                for p in query.predicates() {
                    if p.dim < d {
                        let (lo, hi) = tree_region.bounds[p.dim];
                        guaranteed[p.dim] &= p.lo <= lo && hi <= p.hi;
                    }
                }
            };
        // The aggregation's input dimension, whose pre-folded SUM/MIN/MAX a
        // covered region contributes (COUNT only uses the row count; dim 0
        // stands in, and every dataset has at least one dimension).
        let agg_dim = query.aggregation().input_dim().unwrap_or(0);
        for region_id in self.tree.regions_for_query(query) {
            let region = &self.regions[region_id];
            if region.len == 0 {
                continue;
            }
            // Materialized-aggregate coverage: a region whose bounds lie
            // fully inside the query contributes its pre-folded cube entry
            // as a `PlanPartial` instead of a scan range. Only whole exact
            // regions qualify — partial overlaps (the rims) still scan.
            // Containment also means the region cannot weaken any residual
            // guarantee, so skipping the per-dim flag updates is sound.
            if self.matview && self.tree.region(region_id).contained_in(query) {
                let entry = self
                    .cube
                    .get_or_fold(region_id, &self.store, region.base, region.len);
                if let Some(partial) = entry.partial(agg_dim) {
                    plan.push_partial(partial);
                }
                continue;
            }
            match &region.grid {
                Some(grid) => {
                    let ranges = grid.plan_ranges(query);
                    if ranges.fallback {
                        plan_region_scan(&mut plan, &mut guaranteed, region_id);
                        continue;
                    }
                    for (r, exact) in ranges.ranges {
                        plan.push(region.base + r.start..region.base + r.end, exact);
                    }
                    for (g, rg) in guaranteed.iter_mut().zip(&ranges.guaranteed) {
                        *g &= rg;
                    }
                }
                None => plan_region_scan(&mut plan, &mut guaranteed, region_id),
            }
        }
        plan.with_guaranteed_dims(query, &guaranteed)
    }

    fn size_bytes(&self) -> usize {
        self.tree.size_bytes()
            + self
                .regions
                .iter()
                .map(|r| {
                    r.grid.as_ref().map_or(0, AugmentedGrid::size_bytes)
                        + std::mem::size_of::<RegionIndex>()
                })
                .sum::<usize>()
    }

    fn build_timing(&self) -> BuildTiming {
        self.timing
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        // Exposes the concrete index behind `Box<dyn MultiDimIndex>` so the
        // engine's `Database::reoptimize` can take the incremental path.
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::sample::SplitMix;
    use tsunami_core::{AggResult, Predicate};

    /// A dataset with both correlation (dim1 ~ 2*dim0) and a time-like
    /// dimension (dim2) that the workload queries with recency skew.
    fn dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = SplitMix::new(seed);
        let d0: Vec<u64> = (0..n).map(|_| rng.next_below(50_000)).collect();
        let d1: Vec<u64> = d0.iter().map(|&v| 2 * v + rng.next_below(200)).collect();
        let d2: Vec<u64> = (0..n as u64).map(|i| i * 10_000 / n as u64).collect();
        Dataset::from_columns(vec![d0, d1, d2]).unwrap()
    }

    /// Two query types: broad historical scans over dim0, and narrow recent
    /// scans over dim2 (skewed towards the top of its domain).
    fn workload(seed: u64) -> Workload {
        let mut rng = SplitMix::new(seed);
        let mut qs = Vec::new();
        for _ in 0..30 {
            let lo = rng.next_below(40_000);
            qs.push(Query::count(vec![Predicate::range(0, lo, lo + 8_000).unwrap()]).unwrap());
        }
        for _ in 0..30 {
            let lo = 8_000 + rng.next_below(1_800);
            qs.push(Query::count(vec![Predicate::range(2, lo, lo + 150).unwrap()]).unwrap());
        }
        Workload::new(qs)
    }

    #[test]
    fn tsunami_matches_full_scan_oracle_on_workload_queries() {
        let data = dataset(8_000, 111);
        let w = workload(112);
        let index = TsunamiIndex::build(&data, &w, &TsunamiConfig::fast()).unwrap();
        for q in w.queries() {
            assert_eq!(index.execute(q), q.execute_full_scan(&data), "{q:?}");
        }
    }

    #[test]
    fn tsunami_matches_oracle_on_unseen_multidim_queries() {
        let data = dataset(6_000, 113);
        let w = workload(114);
        let index = TsunamiIndex::build(&data, &w, &TsunamiConfig::fast()).unwrap();
        let mut rng = SplitMix::new(115);
        for _ in 0..25 {
            let a = rng.next_below(45_000);
            let c = rng.next_below(9_000);
            let q = Query::count(vec![
                Predicate::range(0, a, a + 10_000).unwrap(),
                Predicate::range(1, 2 * a, 2 * a + 30_000).unwrap(),
                Predicate::range(2, c, c + 2_000).unwrap(),
            ])
            .unwrap();
            assert_eq!(index.execute(&q), q.execute_full_scan(&data), "{q:?}");
        }
        // Empty-result query.
        let q = Query::count(vec![Predicate::range(0, 400_000, 500_000).unwrap()]).unwrap();
        assert_eq!(q.execute_full_scan(&data), AggResult::Count(0));
        assert_eq!(index.execute(&q), AggResult::Count(0));
    }

    #[test]
    fn tsunami_scans_far_fewer_points_than_a_full_scan() {
        let data = dataset(20_000, 116);
        let w = workload(117);
        let index = TsunamiIndex::build(&data, &w, &TsunamiConfig::fast()).unwrap();
        let mut total_scanned = 0usize;
        for q in w.queries() {
            let (_, stats) = index.execute_with_stats(q);
            total_scanned += stats.points_scanned;
        }
        let avg = total_scanned / w.len();
        assert!(
            avg < data.len() / 3,
            "average scan of {avg} points out of {} is not selective enough",
            data.len()
        );
    }

    #[test]
    fn stats_describe_the_structure() {
        let data = dataset(10_000, 118);
        let w = workload(119);
        let index = TsunamiIndex::build(&data, &w, &TsunamiConfig::fast()).unwrap();
        let stats = index.stats();
        assert_eq!(stats.num_leaf_regions, index.grid_tree().num_regions());
        assert!(stats.num_grid_tree_nodes >= stats.num_leaf_regions);
        assert!(stats.max_points_per_region >= stats.median_points_per_region);
        assert!(stats.median_points_per_region >= stats.min_points_per_region);
        assert!(stats.total_grid_cells > 0);
        let total_points: usize = index.regions.iter().map(|r| r.len).sum();
        assert_eq!(total_points, data.len());
        assert!(index.size_bytes() > 0);
        assert!(index.build_timing().total_secs() > 0.0);
    }

    #[test]
    fn variants_build_and_answer_correctly() {
        let data = dataset(5_000, 120);
        let w = workload(121);
        for variant in [
            IndexVariant::Full,
            IndexVariant::GridTreeOnly,
            IndexVariant::AugmentedGridOnly,
        ] {
            let config = TsunamiConfig::fast().with_variant(variant);
            let index = TsunamiIndex::build(&data, &w, &config).unwrap();
            for q in w.queries().iter().step_by(9) {
                assert_eq!(
                    index.execute(q),
                    q.execute_full_scan(&data),
                    "{variant:?} {q:?}"
                );
            }
            match variant {
                IndexVariant::AugmentedGridOnly => {
                    assert_eq!(index.grid_tree().num_regions(), 1);
                    assert_eq!(index.name(), "AugmentedGrid-only");
                }
                IndexVariant::GridTreeOnly => {
                    // Flood-style regions: no correlation-aware strategies.
                    let s = index.stats();
                    assert_eq!(s.avg_fms_per_region, 0.0);
                    assert_eq!(s.avg_ccdfs_per_region, 0.0);
                }
                IndexVariant::Full => {
                    assert_eq!(index.name(), "Tsunami");
                }
            }
        }
    }

    #[test]
    fn skewed_workload_produces_multiple_regions_in_full_variant() {
        let data = dataset(10_000, 122);
        let w = workload(123);
        let index = TsunamiIndex::build(&data, &w, &TsunamiConfig::fast()).unwrap();
        assert!(
            index.grid_tree().num_regions() >= 2,
            "expected the Grid Tree to split this skewed workload"
        );
    }

    #[test]
    fn empty_workload_still_builds_a_valid_index() {
        let data = dataset(2_000, 124);
        let index =
            TsunamiIndex::build(&data, &Workload::default(), &TsunamiConfig::fast()).unwrap();
        let q = Query::count(vec![Predicate::range(0, 0, 25_000).unwrap()]).unwrap();
        assert_eq!(index.execute(&q), q.execute_full_scan(&data));
    }

    #[test]
    fn sum_queries_are_supported_end_to_end() {
        let data = dataset(4_000, 125);
        let w = workload(126);
        let index = TsunamiIndex::build(&data, &w, &TsunamiConfig::fast()).unwrap();
        let q = Query::new(
            vec![Predicate::range(0, 0, 25_000).unwrap()],
            tsunami_core::Aggregation::Sum(1),
        )
        .unwrap();
        assert_eq!(index.execute(&q), q.execute_full_scan(&data));
    }

    /// A shifted workload over the same data: narrow scans over dim1 (which
    /// the original workload never filters) plus broad historical dim2 scans.
    fn shifted_workload(seed: u64) -> Workload {
        let mut rng = SplitMix::new(seed);
        let mut qs = Vec::new();
        for _ in 0..30 {
            let lo = rng.next_below(90_000);
            qs.push(Query::count(vec![Predicate::range(1, lo, lo + 4_000).unwrap()]).unwrap());
        }
        for _ in 0..30 {
            let lo = rng.next_below(4_000);
            qs.push(Query::count(vec![Predicate::range(2, lo, lo + 2_500).unwrap()]).unwrap());
        }
        Workload::new(qs)
    }

    #[test]
    fn reoptimize_is_incremental_and_preserves_correctness() {
        let data = dataset(9_000, 130);
        let old_w = workload(131);
        let new_w = shifted_workload(132);
        let config = TsunamiConfig::fast();
        let stale = TsunamiIndex::build(&data, &old_w, &config).unwrap();
        let (fresh, report) = stale
            .reoptimize_with_cost(&data, &new_w, &CostModel::default(), &config)
            .unwrap();

        assert!(!report.escalated(), "{report:?}");
        // The report describes the adapted index: collapse and re-splitting
        // may change the region count, but every region is accounted for.
        assert_eq!(report.regions_total, fresh.grid_tree().num_regions());
        assert_eq!(
            report.regions_reoptimized + report.regions_kept,
            report.regions_total
        );
        // Every row is still owned by exactly one region.
        let total_points: usize = fresh.regions.iter().map(|r| r.len).sum();
        assert_eq!(total_points, data.len());

        // Correctness never depends on the layout.
        for q in new_w.queries().iter().chain(old_w.queries()) {
            let expected = q.execute_full_scan(&data);
            assert_eq!(stale.execute(q), expected, "stale {q:?}");
            assert_eq!(fresh.execute(q), expected, "reoptimized {q:?}");
        }
    }

    #[test]
    fn reoptimize_with_the_same_workload_keeps_every_region() {
        let data = dataset(8_000, 133);
        let w = workload(134);
        let config = TsunamiConfig::fast();
        let index = TsunamiIndex::build(&data, &w, &config).unwrap();
        let (same, report) = index
            .reoptimize_with_cost(&data, &w, &CostModel::default(), &config)
            .unwrap();
        assert!(!report.escalated());
        assert_eq!(
            report.regions_reoptimized, 0,
            "an unchanged workload must not re-optimize any region: {report:?}"
        );
        // Identical layouts: every query scans exactly the same points.
        for q in w.queries().iter().step_by(5) {
            assert_eq!(index.execute_with_stats(q), same.execute_with_stats(q));
        }
    }

    #[test]
    fn reoptimize_escalates_on_drift_threshold_and_data_change() {
        let data = dataset(6_000, 135);
        let old_w = workload(136);
        let new_w = shifted_workload(137);
        let config = TsunamiConfig::fast();
        let index = TsunamiIndex::build(&data, &old_w, &config).unwrap();

        // A zero threshold turns any drift into a full rebuild.
        let strict = config.clone().with_reopt_rebuild_drift(0.0);
        let (rebuilt, report) = index
            .reoptimize_with_cost(&data, &new_w, &CostModel::default(), &strict)
            .unwrap();
        assert!(report.escalated(), "{report:?}");
        assert!(report.frequency_drift > 0.0);
        for q in new_w.queries().iter().step_by(7) {
            assert_eq!(rebuilt.execute(q), q.execute_full_scan(&data));
        }

        // Changed data shape: region reuse is unsound, rebuild over the new
        // data instead.
        let grown = dataset(7_000, 138);
        let (over_grown, report) = index
            .reoptimize_with_cost(&grown, &new_w, &CostModel::default(), &config)
            .unwrap();
        assert!(report.escalated());
        for q in new_w.queries().iter().step_by(9) {
            assert_eq!(over_grown.execute(q), q.execute_full_scan(&grown));
        }

        // Changed variant: also a rebuild.
        let gt_only = config.clone().with_variant(IndexVariant::GridTreeOnly);
        let (_, report) = index
            .reoptimize_with_cost(&data, &new_w, &CostModel::default(), &gt_only)
            .unwrap();
        assert!(report.escalated());
    }

    #[test]
    fn reoptimize_rejects_out_of_bounds_queries() {
        let data = dataset(2_000, 139);
        let index = TsunamiIndex::build(&data, &workload(140), &TsunamiConfig::fast()).unwrap();
        let bad = Workload::new(vec![Query::count(
            vec![Predicate::range(9, 0, 10).unwrap()],
        )
        .unwrap()]);
        assert!(index
            .reoptimize(&data, &bad, &TsunamiConfig::fast())
            .is_err());
    }

    /// A batch of rows drawn from the same distribution as `dataset`, plus a
    /// few rows *outside* the build-time domain (larger dim0/dim2 values).
    fn ingest_batch(n: usize, seed: u64) -> Vec<tsunami_core::Point> {
        let mut rng = SplitMix::new(seed);
        let mut rows: Vec<tsunami_core::Point> = (0..n)
            .map(|_| {
                let d0 = rng.next_below(50_000);
                vec![d0, 2 * d0 + rng.next_below(200), rng.next_below(10_000)]
            })
            .collect();
        for i in 0..(n / 10).max(2) {
            // Out-of-domain tail: beyond every build-time max.
            rows.push(vec![120_000 + i as u64, 900_000, 60_000 + i as u64]);
        }
        rows
    }

    /// The ingested index's data, reconstructed from its own store order.
    fn merged_dataset(data: &Dataset, batch: &[tsunami_core::Point]) -> Dataset {
        let mut merged = data.clone();
        for row in batch {
            merged.push_row(row).unwrap();
        }
        merged
    }

    #[test]
    fn ingest_matches_an_index_rebuilt_from_the_full_dataset() {
        let data = dataset(6_000, 150);
        let w = workload(151);
        let config = TsunamiConfig::fast();
        let index = TsunamiIndex::build(&data, &w, &config).unwrap();

        let batch = ingest_batch(400, 152);
        let (ingested, report) = index.ingest(&batch, &config).unwrap();
        assert!(!report.rebuilt, "{report:?}");
        assert_eq!(report.rows_ingested, batch.len());
        assert!(report.regions_touched >= 1);
        assert!(ingested.data_staleness() > 0.0);

        let merged = merged_dataset(&data, &batch);
        // Every row is owned by exactly one region, and the store grew.
        let total: usize = ingested.regions.iter().map(|r| r.len).sum();
        assert_eq!(total, merged.len());

        // Results identical to a full rebuild — including queries reaching
        // only the out-of-domain tail.
        let rebuilt = TsunamiIndex::build(&merged, &w, &config).unwrap();
        let mut probes: Vec<Query> = w.queries().to_vec();
        probes.push(Query::count(vec![Predicate::range(0, 100_000, 200_000).unwrap()]).unwrap());
        probes.push(
            Query::new(
                vec![Predicate::range(2, 55_000, 70_000).unwrap()],
                tsunami_core::Aggregation::Sum(1),
            )
            .unwrap(),
        );
        for q in &probes {
            let expected = q.execute_full_scan(&merged);
            assert_eq!(ingested.execute(q), expected, "ingested {q:?}");
            assert_eq!(rebuilt.execute(q), expected, "rebuilt {q:?}");
        }
    }

    #[test]
    fn ingest_accumulates_staleness_and_escalates_to_rebuild() {
        let data = dataset(3_000, 153);
        let w = workload(154);
        let config = TsunamiConfig::fast();
        let index = TsunamiIndex::build(&data, &w, &config).unwrap();

        // A batch below the rebuild bar keeps the structure...
        let small = ingest_batch(300, 155);
        let (after_small, report) = index.ingest(&small, &config).unwrap();
        assert!(!report.rebuilt);
        // ...a batch pushing the ingested fraction past the bar rebuilds.
        let large = ingest_batch(4_000, 156);
        let (after_large, report) = after_small.ingest(&large, &config).unwrap();
        assert!(report.rebuilt, "{report:?}");
        assert!(report.data_staleness > config.ingest_rebuild_staleness);
        assert_eq!(after_large.data_staleness(), 0.0);

        let merged = merged_dataset(&merged_dataset(&data, &small), &large);
        for q in w.queries().iter().step_by(7) {
            assert_eq!(after_large.execute(q), q.execute_full_scan(&merged));
        }
    }

    #[test]
    fn ingest_reoptimizes_stale_regions_locally() {
        let data = dataset(4_000, 157);
        let w = workload(158);
        // A hair-trigger region bar: any touched region re-optimizes.
        let config = TsunamiConfig::fast().with_ingest_staleness(0.0, 1.0);
        let index = TsunamiIndex::build(&data, &w, &config).unwrap();
        let batch = ingest_batch(200, 159);
        let (ingested, report) = index.ingest(&batch, &config).unwrap();
        assert!(!report.rebuilt);
        assert!(
            report.regions_reoptimized >= 1,
            "a zero staleness bar must escalate touched regions: {report:?}"
        );
        let merged = merged_dataset(&data, &batch);
        for q in w.queries().iter().step_by(5) {
            assert_eq!(ingested.execute(q), q.execute_full_scan(&merged));
        }
    }

    #[test]
    fn ingest_rejects_mismatched_rows_and_accepts_empty_batches() {
        let data = dataset(2_000, 160);
        let config = TsunamiConfig::fast();
        let index = TsunamiIndex::build(&data, &workload(161), &config).unwrap();
        assert!(matches!(
            index.ingest(&[vec![1, 2]], &config),
            Err(TsunamiError::DimensionMismatch { .. })
        ));
        let (same, report) = index.ingest(&[], &config).unwrap();
        assert_eq!(report.rows_ingested, 0);
        assert_eq!(report.regions_touched, 0);
        let q = Query::count(vec![Predicate::range(0, 0, 25_000).unwrap()]).unwrap();
        assert_eq!(same.execute(&q), index.execute(&q));
    }

    #[test]
    fn reoptimize_reports_distinct_escalation_reasons() {
        let data = dataset(3_000, 162);
        let old_w = workload(163);
        let new_w = shifted_workload(164);
        let config = TsunamiConfig::fast();
        let index = TsunamiIndex::build(&data, &old_w, &config).unwrap();

        // Data change.
        let grown = dataset(3_500, 165);
        let (_, report) = index
            .reoptimize_with_cost(&grown, &new_w, &CostModel::default(), &config)
            .unwrap();
        assert_eq!(report.escalation, Some(Escalation::DataChanged));

        // Variant change.
        let gt_only = config.clone().with_variant(IndexVariant::GridTreeOnly);
        let (_, report) = index
            .reoptimize_with_cost(&data, &new_w, &CostModel::default(), &gt_only)
            .unwrap();
        assert_eq!(report.escalation, Some(Escalation::VariantChanged));

        // Workload drift.
        let strict = config.clone().with_reopt_rebuild_drift(0.0);
        let (_, report) = index
            .reoptimize_with_cost(&data, &new_w, &CostModel::default(), &strict)
            .unwrap();
        assert_eq!(report.escalation, Some(Escalation::WorkloadDrift));

        // Data staleness: ingest under a zero rebuild bar... escalates in
        // ingest itself, so drive it through reoptimize instead — ingest
        // with permissive bars, then reoptimize with a zero rebuild bar.
        let permissive = config.clone().with_ingest_staleness(1.0, 1.0);
        let (stale, report) = index.ingest(&ingest_batch(400, 166), &permissive).unwrap();
        assert!(!report.rebuilt);
        let merged_len = stale.regions.iter().map(|r| r.len).sum::<usize>();
        let merged = stale.store.slice_dataset(0..merged_len);
        let zero_bar = config.clone().with_ingest_staleness(0.0, 0.0);
        let (_, report) = stale
            .reoptimize_with_cost(&merged, &old_w, &CostModel::default(), &zero_bar)
            .unwrap();
        assert_eq!(report.escalation, Some(Escalation::DataStaleness));
        assert!(report.data_staleness > 0.0);

        // No escalation: the incremental path reports `None`.
        let (_, report) = index
            .reoptimize_with_cost(&data, &new_w, &CostModel::default(), &config)
            .unwrap();
        assert_eq!(report.escalation, None);
        assert!(!report.escalated());
    }

    /// The live rows of `data` after deleting everything matching `del`.
    fn live_after(data: &Dataset, del: &Query) -> Dataset {
        let keep: Vec<usize> = (0..data.len())
            .filter(|&r| !del.matches_point(data.row(r).as_slice()))
            .collect();
        data.select_rows(&keep)
    }

    /// All five aggregations over the same predicate set.
    fn all_agg_probes(preds: Vec<Predicate>) -> Vec<Query> {
        use tsunami_core::Aggregation::*;
        [Count, Sum(1), Min(1), Max(1), Avg(2)]
            .into_iter()
            .map(|agg| Query::new(preds.clone(), agg).unwrap())
            .collect()
    }

    #[test]
    fn delete_where_tombstones_and_matches_live_oracle() {
        let data = dataset(6_000, 170);
        let w = workload(171);
        let config = TsunamiConfig::fast();
        let index = TsunamiIndex::build(&data, &w, &config).unwrap();

        let del = Query::count(vec![Predicate::range(0, 10_000, 13_000).unwrap()]).unwrap();
        let (after, report) = index.delete_where(&del, &config).unwrap();
        let live = live_after(&data, &del);
        assert!(!report.rebuilt, "{report:?}");
        assert_eq!(report.rows_deleted, data.len() - live.len());
        assert!(report.rows_deleted > 0);
        assert_eq!(after.live_len(), live.len());
        assert!(after.data_staleness() > 0.0);

        // Bit-identical to the live oracle for every aggregation, on probes
        // overlapping the deleted band, the workload, and the full domain.
        let mut probes = all_agg_probes(vec![Predicate::range(0, 8_000, 20_000).unwrap()]);
        probes.extend(all_agg_probes(vec![]));
        probes.extend(w.queries().iter().step_by(7).cloned());
        for q in &probes {
            assert_eq!(after.execute(q), q.execute_full_scan(&live), "{q:?}");
        }

        // Deleting the same band again is a no-op.
        let (_, again) = after.delete_where(&del, &config).unwrap();
        assert_eq!(again.rows_deleted, 0);
    }

    #[test]
    fn delete_compaction_and_rebuild_paths_match_tombstoned_results() {
        let data = dataset(5_000, 172);
        let w = workload(173);
        let del = Query::count(vec![Predicate::range(2, 0, 2_500).unwrap()]).unwrap();
        let live = live_after(&data, &del);
        let mut probes = all_agg_probes(vec![Predicate::range(2, 0, 6_000).unwrap()]);
        probes.extend(all_agg_probes(vec![]));

        // Tombstone-only path (bars never trip).
        let lazy = TsunamiConfig::fast().with_ingest_staleness(1.0, 1.0);
        let index = TsunamiIndex::build(&data, &w, &lazy).unwrap();
        let (tombstoned, report) = index.delete_where(&del, &lazy).unwrap();
        assert!(!report.rebuilt);
        assert_eq!(report.regions_compacted, 0);

        // Per-region compaction path (zero region bar): dead rows are
        // physically gone.
        let eager = TsunamiConfig::fast().with_ingest_staleness(0.0, 1.0);
        let index = TsunamiIndex::build(&data, &w, &eager).unwrap();
        let (compacted, report) = index.delete_where(&del, &eager).unwrap();
        assert!(!report.rebuilt);
        assert!(report.regions_compacted >= 1, "{report:?}");
        assert_eq!(compacted.store.len(), live.len());
        let total: usize = compacted.regions.iter().map(|r| r.len).sum();
        assert_eq!(total, live.len());

        // Whole-index rebuild path (zero rebuild bar).
        let rebuild = TsunamiConfig::fast().with_ingest_staleness(1.0, 0.0);
        let index = TsunamiIndex::build(&data, &w, &rebuild).unwrap();
        let (rebuilt, report) = index.delete_where(&del, &rebuild).unwrap();
        assert!(report.rebuilt, "{report:?}");
        assert_eq!(rebuilt.store.len(), live.len());
        assert_eq!(rebuilt.data_staleness(), 0.0);

        // All three paths are bit-identical to the live oracle.
        for q in &probes {
            let expected = q.execute_full_scan(&live);
            assert_eq!(tombstoned.execute(q), expected, "tombstoned {q:?}");
            assert_eq!(compacted.execute(q), expected, "compacted {q:?}");
            assert_eq!(rebuilt.execute(q), expected, "rebuilt {q:?}");
        }
    }

    #[test]
    fn ingest_after_delete_never_resurrects_tombstoned_rows() {
        let data = dataset(3_000, 174);
        let w = workload(175);
        let lazy = TsunamiConfig::fast().with_ingest_staleness(1.0, 1.0);
        let index = TsunamiIndex::build(&data, &w, &lazy).unwrap();
        let del = Query::count(vec![Predicate::range(0, 0, 20_000).unwrap()]).unwrap();
        let (after, report) = index.delete_where(&del, &lazy).unwrap();
        assert!(!report.rebuilt);
        assert!(report.rows_deleted > 0);
        let live = live_after(&data, &del);

        // An ingest big enough to trip the rebuild bar merges live rows plus
        // the batch — the tombstoned rows must not come back.
        let strict = TsunamiConfig::fast().with_ingest_staleness(1.0, 0.0);
        let batch = ingest_batch(300, 176);
        let (merged_index, report) = after
            .ingest_with_cost(
                &Dataset::from_rows(3, &batch).unwrap(),
                &CostModel::default(),
                &strict,
            )
            .unwrap();
        assert!(report.rebuilt, "{report:?}");
        let merged = merged_dataset(&live, &batch);
        assert_eq!(merged_index.store.len(), merged.len());
        for q in all_agg_probes(vec![Predicate::range(0, 0, 30_000).unwrap()]) {
            assert_eq!(
                merged_index.execute(&q),
                q.execute_full_scan(&merged),
                "{q:?}"
            );
        }

        // A post-delete reoptimize over the live dataset must not spuriously
        // escalate as DataChanged.
        let (_, report) = after
            .reoptimize_with_cost(&live, &w, &CostModel::default(), &lazy)
            .unwrap();
        assert_ne!(
            report.escalation,
            Some(Escalation::DataChanged),
            "{report:?}"
        );
    }

    #[test]
    fn zero_dimensional_dataset_is_rejected() {
        let data = Dataset::from_columns(vec![vec![1, 2, 3]])
            .unwrap()
            .select_dims(&[]);
        let err = TsunamiIndex::build(&data, &Workload::default(), &TsunamiConfig::fast());
        assert!(err.is_err());
    }
}
