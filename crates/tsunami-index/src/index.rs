//! The composed Tsunami index: Grid Tree over the data space, with an
//! independently-optimized Augmented Grid inside every region that receives
//! queries (§3).

use std::time::Instant;

use crate::augmented_grid::{optimize_layout, AugmentedGrid, OptimizerKind, Skeleton};
use crate::config::{IndexVariant, TsunamiConfig};
use crate::grid_tree::GridTree;
use crate::query_types::cluster_query_types;
use tsunami_core::{
    BuildTiming, CostModel, Dataset, MultiDimIndex, Query, Result, ScanPlan, ScanSource,
    TsunamiError, Workload,
};
use tsunami_store::ColumnStore;

/// Per-region physical layout information.
#[derive(Debug, Clone)]
struct RegionIndex {
    /// First physical row of the region in the reordered store.
    base: usize,
    /// Number of rows in the region.
    len: usize,
    /// The region's Augmented Grid, or `None` when no query intersects the
    /// region (it is then answered with a plain region scan).
    grid: Option<AugmentedGrid>,
}

/// Statistics of an optimized Tsunami index (Table 4).
#[derive(Debug, Clone, PartialEq)]
pub struct TsunamiStats {
    /// Total Grid Tree nodes (internal + leaf).
    pub num_grid_tree_nodes: usize,
    /// Grid Tree depth.
    pub grid_tree_depth: usize,
    /// Number of leaf regions.
    pub num_leaf_regions: usize,
    /// Minimum points in a region.
    pub min_points_per_region: usize,
    /// Median points in a region.
    pub median_points_per_region: usize,
    /// Maximum points in a region.
    pub max_points_per_region: usize,
    /// Average number of functional mappings per indexed region.
    pub avg_fms_per_region: f64,
    /// Average number of conditional CDFs per indexed region.
    pub avg_ccdfs_per_region: f64,
    /// Total number of grid cells across all regions.
    pub total_grid_cells: usize,
}

/// Tsunami: a learned multi-dimensional index robust to data correlation and
/// query skew.
#[derive(Debug)]
pub struct TsunamiIndex {
    tree: GridTree,
    regions: Vec<RegionIndex>,
    store: ColumnStore,
    timing: BuildTiming,
    name: String,
}

impl TsunamiIndex {
    /// Builds a Tsunami index with the default configuration's structure but
    /// the provided config (convenience wrapper around
    /// [`TsunamiIndex::build_with_cost`] using a default [`CostModel`]).
    pub fn build(data: &Dataset, workload: &Workload, config: &TsunamiConfig) -> Result<Self> {
        Self::build_with_cost(data, workload, &CostModel::default(), config)
    }

    /// Builds a Tsunami index using an explicit cost model (e.g. one
    /// calibrated on the current machine).
    pub fn build_with_cost(
        data: &Dataset,
        workload: &Workload,
        cost: &CostModel,
        config: &TsunamiConfig,
    ) -> Result<Self> {
        if data.num_dims() == 0 {
            return Err(TsunamiError::Build("dataset has no dimensions".into()));
        }

        // ------------------------------------------------------------------
        // Offline optimization (Fig 9b "optimization time"):
        //   (1) cluster query types, (2) optimize the Grid Tree,
        //   (3) optimize each region's Augmented Grid layout.
        // ------------------------------------------------------------------
        let opt_start = Instant::now();
        let (effective_config, optimizer_kind) = match config.variant {
            // Grid Tree only: disable the correlation-aware strategies so the
            // heuristic skeleton degenerates to Flood's all-independent grid,
            // and skip the skeleton search.
            IndexVariant::GridTreeOnly => {
                let mut c = config.clone();
                c.fm_error_fraction = 0.0;
                c.ccdf_empty_fraction = 1.1;
                (c, OptimizerKind::GradientOnly)
            }
            _ => (config.clone(), config.optimizer),
        };

        let types = if config.variant == IndexVariant::AugmentedGridOnly {
            Vec::new()
        } else {
            cluster_query_types(
                data,
                workload,
                effective_config.dbscan_eps,
                effective_config.dbscan_min_pts,
                effective_config.optimizer_sample_size,
                effective_config.seed,
            )
        };
        let (tree, region_data) = GridTree::build(data, &types, &effective_config);

        // Optimize a layout for every region that has intersecting queries.
        let mut layouts: Vec<Option<(Skeleton, Vec<usize>)>> =
            Vec::with_capacity(region_data.len());
        let mut region_datasets: Vec<Dataset> = Vec::with_capacity(region_data.len());
        for rd in &region_data {
            let region_ds = data.select_rows(&rd.rows);
            if rd.queries.is_empty() || rd.rows.is_empty() {
                layouts.push(None);
            } else {
                let region_workload = Workload::new(rd.queries.clone());
                let layout = optimize_layout(
                    &region_ds,
                    &region_workload,
                    cost,
                    &effective_config,
                    optimizer_kind,
                );
                layouts.push(Some((layout.skeleton, layout.partitions)));
            }
            region_datasets.push(region_ds);
        }
        let optimize_secs = opt_start.elapsed().as_secs_f64();

        // ------------------------------------------------------------------
        // Data organization (Fig 9b "data sorting time"): build each region's
        // grid over its full data and reorder the column store so regions
        // (and cells within regions) are contiguous.
        // ------------------------------------------------------------------
        let sort_start = Instant::now();
        let mut regions = Vec::with_capacity(region_data.len());
        let mut global_perm: Vec<usize> = Vec::with_capacity(data.len());
        for (rd, (region_ds, layout)) in region_data.iter().zip(region_datasets.iter().zip(layouts))
        {
            let base = global_perm.len();
            let grid = match layout {
                None => {
                    global_perm.extend_from_slice(&rd.rows);
                    None
                }
                Some((skeleton, partitions)) => {
                    let (grid, local_perm) =
                        AugmentedGrid::build(region_ds, &skeleton, &partitions);
                    global_perm.extend(local_perm.into_iter().map(|local| rd.rows[local]));
                    Some(grid)
                }
            };
            regions.push(RegionIndex {
                base,
                len: rd.rows.len(),
                grid,
            });
        }
        let mut store = ColumnStore::from_dataset(data);
        store.permute(&global_perm);
        let sort_secs = sort_start.elapsed().as_secs_f64();

        let name = match config.variant {
            IndexVariant::Full => "Tsunami",
            IndexVariant::GridTreeOnly => "GridTree-only",
            IndexVariant::AugmentedGridOnly => "AugmentedGrid-only",
        };

        Ok(Self {
            tree,
            regions,
            store,
            timing: BuildTiming {
                sort_secs,
                optimize_secs,
            },
            name: name.to_string(),
        })
    }

    /// The Grid Tree component.
    pub fn grid_tree(&self) -> &GridTree {
        &self.tree
    }

    /// Index statistics in the shape of the paper's Table 4.
    pub fn stats(&self) -> TsunamiStats {
        let mut points: Vec<usize> = self.regions.iter().map(|r| r.len).collect();
        points.sort_unstable();
        let indexed: Vec<&AugmentedGrid> = self
            .regions
            .iter()
            .filter_map(|r| r.grid.as_ref())
            .collect();
        let n_indexed = indexed.len().max(1);
        TsunamiStats {
            num_grid_tree_nodes: self.tree.num_nodes(),
            grid_tree_depth: self.tree.depth(),
            num_leaf_regions: self.tree.num_regions(),
            min_points_per_region: points.first().copied().unwrap_or(0),
            median_points_per_region: points.get(points.len() / 2).copied().unwrap_or(0),
            max_points_per_region: points.last().copied().unwrap_or(0),
            avg_fms_per_region: indexed
                .iter()
                .map(|g| g.num_functional_mappings() as f64)
                .sum::<f64>()
                / n_indexed as f64,
            avg_ccdfs_per_region: indexed
                .iter()
                .map(|g| g.num_conditional_cdfs() as f64)
                .sum::<f64>()
                / n_indexed as f64,
            total_grid_cells: indexed.iter().map(|g| g.num_cells()).sum(),
        }
    }

    /// Total number of grid cells across regions (Table 4).
    pub fn total_cells(&self) -> usize {
        self.stats().total_grid_cells
    }
}

impl MultiDimIndex for TsunamiIndex {
    fn name(&self) -> &str {
        &self.name
    }

    fn source(&self) -> &dyn ScanSource {
        &self.store
    }

    fn plan(&self, query: &Query) -> ScanPlan {
        let d = self.store.num_dims();
        let mut plan = ScanPlan::new();
        // Residual elimination: a predicate needs re-checking only if *some*
        // planned region fails to guarantee it by construction (through its
        // grid's visited partitions, or through the Grid Tree region bounds
        // for unindexed regions).
        let mut guaranteed = vec![true; d];
        for region_id in self.tree.regions_for_query(query) {
            let region = &self.regions[region_id];
            if region.len == 0 {
                continue;
            }
            match &region.grid {
                Some(grid) => {
                    let ranges = grid.plan_ranges(query);
                    for (r, exact) in ranges.ranges {
                        plan.push(region.base + r.start..region.base + r.end, exact);
                    }
                    for (g, rg) in guaranteed.iter_mut().zip(&ranges.guaranteed) {
                        *g &= rg;
                    }
                }
                None => {
                    let tree_region = self.tree.region(region_id);
                    let exact = tree_region.contained_in(query);
                    plan.push(region.base..region.base + region.len, exact);
                    for p in query.predicates() {
                        if p.dim < d {
                            let (lo, hi) = tree_region.bounds[p.dim];
                            guaranteed[p.dim] &= p.lo <= lo && hi <= p.hi;
                        }
                    }
                }
            }
        }
        plan.with_guaranteed_dims(query, &guaranteed)
    }

    fn size_bytes(&self) -> usize {
        self.tree.size_bytes()
            + self
                .regions
                .iter()
                .map(|r| {
                    r.grid.as_ref().map_or(0, AugmentedGrid::size_bytes)
                        + std::mem::size_of::<RegionIndex>()
                })
                .sum::<usize>()
    }

    fn build_timing(&self) -> BuildTiming {
        self.timing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::sample::SplitMix;
    use tsunami_core::{AggResult, Predicate};

    /// A dataset with both correlation (dim1 ~ 2*dim0) and a time-like
    /// dimension (dim2) that the workload queries with recency skew.
    fn dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = SplitMix::new(seed);
        let d0: Vec<u64> = (0..n).map(|_| rng.next_below(50_000)).collect();
        let d1: Vec<u64> = d0.iter().map(|&v| 2 * v + rng.next_below(200)).collect();
        let d2: Vec<u64> = (0..n as u64).map(|i| i * 10_000 / n as u64).collect();
        Dataset::from_columns(vec![d0, d1, d2]).unwrap()
    }

    /// Two query types: broad historical scans over dim0, and narrow recent
    /// scans over dim2 (skewed towards the top of its domain).
    fn workload(seed: u64) -> Workload {
        let mut rng = SplitMix::new(seed);
        let mut qs = Vec::new();
        for _ in 0..30 {
            let lo = rng.next_below(40_000);
            qs.push(Query::count(vec![Predicate::range(0, lo, lo + 8_000).unwrap()]).unwrap());
        }
        for _ in 0..30 {
            let lo = 8_000 + rng.next_below(1_800);
            qs.push(Query::count(vec![Predicate::range(2, lo, lo + 150).unwrap()]).unwrap());
        }
        Workload::new(qs)
    }

    #[test]
    fn tsunami_matches_full_scan_oracle_on_workload_queries() {
        let data = dataset(8_000, 111);
        let w = workload(112);
        let index = TsunamiIndex::build(&data, &w, &TsunamiConfig::fast()).unwrap();
        for q in w.queries() {
            assert_eq!(index.execute(q), q.execute_full_scan(&data), "{q:?}");
        }
    }

    #[test]
    fn tsunami_matches_oracle_on_unseen_multidim_queries() {
        let data = dataset(6_000, 113);
        let w = workload(114);
        let index = TsunamiIndex::build(&data, &w, &TsunamiConfig::fast()).unwrap();
        let mut rng = SplitMix::new(115);
        for _ in 0..25 {
            let a = rng.next_below(45_000);
            let c = rng.next_below(9_000);
            let q = Query::count(vec![
                Predicate::range(0, a, a + 10_000).unwrap(),
                Predicate::range(1, 2 * a, 2 * a + 30_000).unwrap(),
                Predicate::range(2, c, c + 2_000).unwrap(),
            ])
            .unwrap();
            assert_eq!(index.execute(&q), q.execute_full_scan(&data), "{q:?}");
        }
        // Empty-result query.
        let q = Query::count(vec![Predicate::range(0, 400_000, 500_000).unwrap()]).unwrap();
        assert_eq!(q.execute_full_scan(&data), AggResult::Count(0));
        assert_eq!(index.execute(&q), AggResult::Count(0));
    }

    #[test]
    fn tsunami_scans_far_fewer_points_than_a_full_scan() {
        let data = dataset(20_000, 116);
        let w = workload(117);
        let index = TsunamiIndex::build(&data, &w, &TsunamiConfig::fast()).unwrap();
        let mut total_scanned = 0usize;
        for q in w.queries() {
            let (_, stats) = index.execute_with_stats(q);
            total_scanned += stats.points_scanned;
        }
        let avg = total_scanned / w.len();
        assert!(
            avg < data.len() / 3,
            "average scan of {avg} points out of {} is not selective enough",
            data.len()
        );
    }

    #[test]
    fn stats_describe_the_structure() {
        let data = dataset(10_000, 118);
        let w = workload(119);
        let index = TsunamiIndex::build(&data, &w, &TsunamiConfig::fast()).unwrap();
        let stats = index.stats();
        assert_eq!(stats.num_leaf_regions, index.grid_tree().num_regions());
        assert!(stats.num_grid_tree_nodes >= stats.num_leaf_regions);
        assert!(stats.max_points_per_region >= stats.median_points_per_region);
        assert!(stats.median_points_per_region >= stats.min_points_per_region);
        assert!(stats.total_grid_cells > 0);
        let total_points: usize = index.regions.iter().map(|r| r.len).sum();
        assert_eq!(total_points, data.len());
        assert!(index.size_bytes() > 0);
        assert!(index.build_timing().total_secs() > 0.0);
    }

    #[test]
    fn variants_build_and_answer_correctly() {
        let data = dataset(5_000, 120);
        let w = workload(121);
        for variant in [
            IndexVariant::Full,
            IndexVariant::GridTreeOnly,
            IndexVariant::AugmentedGridOnly,
        ] {
            let config = TsunamiConfig::fast().with_variant(variant);
            let index = TsunamiIndex::build(&data, &w, &config).unwrap();
            for q in w.queries().iter().step_by(9) {
                assert_eq!(
                    index.execute(q),
                    q.execute_full_scan(&data),
                    "{variant:?} {q:?}"
                );
            }
            match variant {
                IndexVariant::AugmentedGridOnly => {
                    assert_eq!(index.grid_tree().num_regions(), 1);
                    assert_eq!(index.name(), "AugmentedGrid-only");
                }
                IndexVariant::GridTreeOnly => {
                    // Flood-style regions: no correlation-aware strategies.
                    let s = index.stats();
                    assert_eq!(s.avg_fms_per_region, 0.0);
                    assert_eq!(s.avg_ccdfs_per_region, 0.0);
                }
                IndexVariant::Full => {
                    assert_eq!(index.name(), "Tsunami");
                }
            }
        }
    }

    #[test]
    fn skewed_workload_produces_multiple_regions_in_full_variant() {
        let data = dataset(10_000, 122);
        let w = workload(123);
        let index = TsunamiIndex::build(&data, &w, &TsunamiConfig::fast()).unwrap();
        assert!(
            index.grid_tree().num_regions() >= 2,
            "expected the Grid Tree to split this skewed workload"
        );
    }

    #[test]
    fn empty_workload_still_builds_a_valid_index() {
        let data = dataset(2_000, 124);
        let index =
            TsunamiIndex::build(&data, &Workload::default(), &TsunamiConfig::fast()).unwrap();
        let q = Query::count(vec![Predicate::range(0, 0, 25_000).unwrap()]).unwrap();
        assert_eq!(index.execute(&q), q.execute_full_scan(&data));
    }

    #[test]
    fn sum_queries_are_supported_end_to_end() {
        let data = dataset(4_000, 125);
        let w = workload(126);
        let index = TsunamiIndex::build(&data, &w, &TsunamiConfig::fast()).unwrap();
        let q = Query::new(
            vec![Predicate::range(0, 0, 25_000).unwrap()],
            tsunami_core::Aggregation::Sum(1),
        )
        .unwrap();
        assert_eq!(index.execute(&q), q.execute_full_scan(&data));
    }

    #[test]
    fn zero_dimensional_dataset_is_rejected() {
        let data = Dataset::from_columns(vec![vec![1, 2, 3]])
            .unwrap()
            .select_dims(&[]);
        let err = TsunamiIndex::build(&data, &Workload::default(), &TsunamiConfig::fast());
        assert!(err.is_err());
    }
}
