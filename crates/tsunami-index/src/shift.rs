//! Workload-shift detection (§8, "Data and Workload Shift").
//!
//! Tsunami adapts to a new workload by re-optimizing, but the paper leaves
//! open *when* to trigger that re-optimization. Following the paper's
//! suggestion, this module detects three signals by comparing a reference
//! workload (the one the index was optimized for) against a window of
//! recently observed queries:
//!
//! 1. an existing query type disappears,
//! 2. a new query type appears,
//! 3. the relative frequencies of query types change substantially.
//!
//! Query types are matched by their filtered-dimension set and average
//! per-dimension selectivity (the same embedding used for clustering in
//! §4.3.1).

use crate::config::TsunamiConfig;
use crate::query_types::{cluster_query_types, QueryType};
use tsunami_core::{Dataset, Workload};

/// A fingerprint of one query type: which dimensions it filters, its average
/// selectivity embedding, and its share of the workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeSignature {
    /// Dimensions filtered by every query of the type.
    pub filtered_dims: Vec<usize>,
    /// Mean per-dimension selectivity over the filtered dimensions.
    pub mean_selectivity: Vec<f64>,
    /// Fraction of the workload belonging to this type.
    pub frequency: f64,
}

/// The outcome of comparing an observed workload against the reference.
#[derive(Debug, Clone, PartialEq)]
pub struct ShiftReport {
    /// Types present in the reference but absent from the observation.
    pub disappeared_types: usize,
    /// Types present in the observation but absent from the reference.
    pub new_types: usize,
    /// Total absolute change in type frequency (0 = identical mix, 2 = fully
    /// disjoint mixes).
    pub frequency_drift: f64,
    /// Whether re-optimization is recommended under the configured thresholds.
    pub reoptimize: bool,
}

/// Detects workload shift by fingerprinting query types.
#[derive(Debug, Clone)]
pub struct WorkloadMonitor {
    reference: Vec<TypeSignature>,
    /// Embedding distance below which two types are considered the same.
    match_eps: f64,
    /// Frequency drift above which re-optimization is recommended.
    drift_threshold: f64,
}

impl WorkloadMonitor {
    /// Creates a monitor from the workload the index was optimized for.
    ///
    /// `match_eps` follows the clustering eps (default 0.2);
    /// `drift_threshold` defaults to 0.5 (half of the workload's mass moved).
    pub fn new(data: &Dataset, reference: &Workload, config: &TsunamiConfig) -> Self {
        Self {
            reference: signatures(data, reference, config),
            match_eps: config.dbscan_eps,
            drift_threshold: 0.5,
        }
    }

    /// Overrides the drift threshold.
    pub fn with_drift_threshold(mut self, threshold: f64) -> Self {
        self.drift_threshold = threshold;
        self
    }

    /// The reference type signatures.
    pub fn reference(&self) -> &[TypeSignature] {
        &self.reference
    }

    /// Compares an observed workload window against the reference.
    pub fn observe(
        &self,
        data: &Dataset,
        observed: &Workload,
        config: &TsunamiConfig,
    ) -> ShiftReport {
        let obs = signatures(data, observed, config);
        let mut matched_obs = vec![false; obs.len()];
        let mut disappeared = 0usize;
        let mut drift = 0.0f64;

        for r in &self.reference {
            match obs
                .iter()
                .enumerate()
                .filter(|(i, o)| !matched_obs[*i] && same_type(r, o, self.match_eps))
                .min_by(|(_, a), (_, b)| {
                    distance(r, a)
                        .partial_cmp(&distance(r, b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                }) {
                Some((i, o)) => {
                    matched_obs[i] = true;
                    drift += (r.frequency - o.frequency).abs();
                }
                None => {
                    disappeared += 1;
                    drift += r.frequency;
                }
            }
        }
        let new_types = matched_obs.iter().filter(|&&m| !m).count();
        drift += obs
            .iter()
            .enumerate()
            .filter(|(i, _)| !matched_obs[*i])
            .map(|(_, o)| o.frequency)
            .sum::<f64>();

        let reoptimize = disappeared > 0 || new_types > 0 || drift > self.drift_threshold;
        ShiftReport {
            disappeared_types: disappeared,
            new_types,
            frequency_drift: drift,
            reoptimize,
        }
    }
}

fn signatures(data: &Dataset, workload: &Workload, config: &TsunamiConfig) -> Vec<TypeSignature> {
    let types: Vec<QueryType> = cluster_query_types(
        data,
        workload,
        config.dbscan_eps,
        config.dbscan_min_pts,
        config.optimizer_sample_size,
        config.seed,
    );
    let total: usize = types.iter().map(|t| t.queries.len()).sum();
    types
        .iter()
        .map(|t| {
            let sample = tsunami_core::sample::sample_dataset(
                data,
                config.optimizer_sample_size,
                config.seed,
            );
            let mean_selectivity: Vec<f64> = t
                .filtered_dims
                .iter()
                .map(|&d| {
                    t.queries
                        .iter()
                        .map(|q| q.dim_selectivity(&sample, d))
                        .sum::<f64>()
                        / t.queries.len().max(1) as f64
                })
                .collect();
            TypeSignature {
                filtered_dims: t.filtered_dims.clone(),
                mean_selectivity,
                frequency: t.queries.len() as f64 / total.max(1) as f64,
            }
        })
        .collect()
}

fn same_type(a: &TypeSignature, b: &TypeSignature, eps: f64) -> bool {
    a.filtered_dims == b.filtered_dims && distance(a, b) <= eps
}

fn distance(a: &TypeSignature, b: &TypeSignature) -> f64 {
    if a.mean_selectivity.len() != b.mean_selectivity.len() {
        return f64::INFINITY;
    }
    a.mean_selectivity
        .iter()
        .zip(&b.mean_selectivity)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::{Predicate, Query};

    fn data() -> Dataset {
        Dataset::from_columns(vec![
            (0..5_000u64).collect(),
            (0..5_000u64).map(|v| (v * 31) % 5_000).collect(),
        ])
        .unwrap()
    }

    fn workload_a(offset: u64) -> Workload {
        Workload::new(
            (0..30u64)
                .map(|i| {
                    Query::count(vec![Predicate::range(
                        0,
                        offset + i * 10,
                        offset + i * 10 + 100,
                    )
                    .unwrap()])
                    .unwrap()
                })
                .collect(),
        )
    }

    fn workload_b() -> Workload {
        Workload::new(
            (0..30u64)
                .map(|i| {
                    Query::count(vec![Predicate::range(1, i * 50, i * 50 + 2_000).unwrap()])
                        .unwrap()
                })
                .collect(),
        )
    }

    #[test]
    fn identical_workload_needs_no_reoptimization() {
        let ds = data();
        let cfg = TsunamiConfig::fast();
        let monitor = WorkloadMonitor::new(&ds, &workload_a(0), &cfg);
        let report = monitor.observe(&ds, &workload_a(5), &cfg);
        assert_eq!(report.disappeared_types, 0);
        assert_eq!(report.new_types, 0);
        assert!(report.frequency_drift < 0.2, "{report:?}");
        assert!(!report.reoptimize);
    }

    #[test]
    fn replaced_workload_triggers_reoptimization() {
        let ds = data();
        let cfg = TsunamiConfig::fast();
        let monitor = WorkloadMonitor::new(&ds, &workload_a(0), &cfg);
        let report = monitor.observe(&ds, &workload_b(), &cfg);
        assert!(report.new_types > 0 || report.disappeared_types > 0);
        assert!(report.reoptimize, "{report:?}");
    }

    #[test]
    fn mixed_workload_reports_partial_drift() {
        let ds = data();
        let cfg = TsunamiConfig::fast();
        let monitor = WorkloadMonitor::new(&ds, &workload_a(0), &cfg);
        let mut mixed = workload_a(0);
        mixed.extend(&workload_b());
        let report = monitor.observe(&ds, &mixed, &cfg);
        // The original type is still present, a new one appeared.
        assert_eq!(report.disappeared_types, 0);
        assert!(report.new_types >= 1);
        assert!(report.reoptimize);
    }

    #[test]
    fn drift_threshold_is_configurable() {
        let ds = data();
        let cfg = TsunamiConfig::fast();
        let strict = WorkloadMonitor::new(&ds, &workload_a(0), &cfg).with_drift_threshold(0.0);
        // Even tiny drift now triggers re-optimization.
        let report = strict.observe(&ds, &workload_a(40), &cfg);
        assert!(report.reoptimize || report.frequency_drift == 0.0);
        assert!(!strict.reference().is_empty());
    }
}
