//! Workload-shift detection (§8, "Data and Workload Shift").
//!
//! Tsunami adapts to a new workload by re-optimizing, but the paper leaves
//! open *when* to trigger that re-optimization. Following the paper's
//! suggestion, this module detects three signals by comparing a reference
//! workload (the one the index was optimized for) against a window of
//! recently observed queries:
//!
//! 1. an existing query type disappears,
//! 2. a new query type appears,
//! 3. the relative frequencies of query types change substantially.
//!
//! Query types are matched by their filtered-dimension set and average
//! per-dimension selectivity (the same embedding used for clustering in
//! §4.3.1).
//!
//! The monitor also carries a bounded **sliding observation window**
//! ([`WorkloadMonitor::record`] / [`WorkloadMonitor::window_report`]): an
//! engine front-end feeds it the queries it serves and periodically asks
//! whether the recent mix has drifted from the reference. A positive
//! [`ShiftReport::reoptimize`] is what triggers
//! [`crate::TsunamiIndex::reoptimize`] — the incremental path that keeps the
//! Grid Tree and sorted data and re-optimizes only the regions whose query
//! mix actually changed.

use std::collections::VecDeque;

use crate::config::TsunamiConfig;
use crate::query_types::{cluster_query_types, QueryType};
use tsunami_core::{Dataset, Query, Workload};

/// A fingerprint of one query type: which dimensions it filters, its average
/// selectivity embedding, and its share of the workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeSignature {
    /// Dimensions filtered by every query of the type.
    pub filtered_dims: Vec<usize>,
    /// Mean per-dimension selectivity over the filtered dimensions.
    pub mean_selectivity: Vec<f64>,
    /// Fraction of the workload belonging to this type.
    pub frequency: f64,
}

/// The outcome of comparing an observed workload against the reference.
#[derive(Debug, Clone, PartialEq)]
pub struct ShiftReport {
    /// Types present in the reference but absent from the observation.
    pub disappeared_types: usize,
    /// Types present in the observation but absent from the reference.
    pub new_types: usize,
    /// Total absolute change in type frequency (0 = identical mix, 2 = fully
    /// disjoint mixes).
    pub frequency_drift: f64,
    /// Whether re-optimization is recommended under the configured thresholds.
    pub reoptimize: bool,
}

/// Detects workload shift by fingerprinting query types.
#[derive(Debug, Clone)]
pub struct WorkloadMonitor {
    reference: Vec<TypeSignature>,
    /// Embedding distance below which two types are considered the same.
    match_eps: f64,
    /// Frequency drift above which re-optimization is recommended.
    drift_threshold: f64,
    /// Sliding window of recently observed queries (oldest first).
    window: VecDeque<Query>,
    /// Maximum number of queries retained in the window.
    window_capacity: usize,
}

impl WorkloadMonitor {
    /// Creates a monitor from the workload the index was optimized for.
    ///
    /// `match_eps` follows the clustering eps (default 0.2);
    /// `drift_threshold` defaults to 0.5 (half of the workload's mass moved);
    /// the sliding window keeps `config.observation_window` queries.
    pub fn new(data: &Dataset, reference: &Workload, config: &TsunamiConfig) -> Self {
        Self {
            reference: signatures(data, reference, config),
            match_eps: config.dbscan_eps,
            drift_threshold: 0.5,
            window: VecDeque::new(),
            window_capacity: config.observation_window.max(1),
        }
    }

    /// Overrides the drift threshold.
    pub fn with_drift_threshold(mut self, threshold: f64) -> Self {
        self.drift_threshold = threshold;
        self
    }

    /// Overrides the sliding window capacity (evicting down if needed).
    pub fn with_window_capacity(mut self, capacity: usize) -> Self {
        self.window_capacity = capacity.max(1);
        while self.window.len() > self.window_capacity {
            self.window.pop_front();
        }
        self
    }

    /// The reference type signatures.
    pub fn reference(&self) -> &[TypeSignature] {
        &self.reference
    }

    /// Records one served query into the sliding observation window,
    /// evicting the oldest observation once the window is full.
    pub fn record(&mut self, query: Query) {
        if self.window.len() == self.window_capacity {
            self.window.pop_front();
        }
        self.window.push_back(query);
    }

    /// Number of queries currently in the observation window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// The observation window as a workload (oldest observation first).
    pub fn window_workload(&self) -> Workload {
        Workload::new(self.window.iter().cloned().collect())
    }

    /// Discards all recorded observations.
    pub fn clear_window(&mut self) {
        self.window.clear();
    }

    /// Compares the sliding observation window against the reference —
    /// [`WorkloadMonitor::observe`] over [`WorkloadMonitor::window_workload`].
    /// An empty window reports zero drift (nothing observed ≠ shift).
    pub fn window_report(&self, data: &Dataset, config: &TsunamiConfig) -> ShiftReport {
        if self.window.is_empty() {
            return ShiftReport {
                disappeared_types: 0,
                new_types: 0,
                frequency_drift: 0.0,
                reoptimize: false,
            };
        }
        self.observe(data, &self.window_workload(), config)
    }

    /// Compares an observed workload window against the reference.
    pub fn observe(
        &self,
        data: &Dataset,
        observed: &Workload,
        config: &TsunamiConfig,
    ) -> ShiftReport {
        let obs = signatures(data, observed, config);
        let mut matched_obs = vec![false; obs.len()];
        let mut disappeared = 0usize;
        let mut drift = 0.0f64;

        for r in &self.reference {
            match obs
                .iter()
                .enumerate()
                .filter(|(i, o)| !matched_obs[*i] && same_type(r, o, self.match_eps))
                .min_by(|(_, a), (_, b)| {
                    distance(r, a)
                        .partial_cmp(&distance(r, b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                }) {
                Some((i, o)) => {
                    matched_obs[i] = true;
                    drift += (r.frequency - o.frequency).abs();
                }
                None => {
                    disappeared += 1;
                    drift += r.frequency;
                }
            }
        }
        let new_types = matched_obs.iter().filter(|&&m| !m).count();
        drift += obs
            .iter()
            .enumerate()
            .filter(|(i, _)| !matched_obs[*i])
            .map(|(_, o)| o.frequency)
            .sum::<f64>();

        let reoptimize = disappeared > 0 || new_types > 0 || drift > self.drift_threshold;
        ShiftReport {
            disappeared_types: disappeared,
            new_types,
            frequency_drift: drift,
            reoptimize,
        }
    }
}

fn signatures(data: &Dataset, workload: &Workload, config: &TsunamiConfig) -> Vec<TypeSignature> {
    let types: Vec<QueryType> = cluster_query_types(
        data,
        workload,
        config.dbscan_eps,
        config.dbscan_min_pts,
        config.optimizer_sample_size,
        config.seed,
    );
    let total: usize = types.iter().map(|t| t.queries.len()).sum();
    // One shared sample: the seed is fixed, so per-type sampling would
    // produce the identical rows anyway.
    let sample =
        tsunami_core::sample::sample_dataset(data, config.optimizer_sample_size, config.seed);
    types
        .iter()
        .map(|t| {
            let mean_selectivity: Vec<f64> = t
                .filtered_dims
                .iter()
                .map(|&d| {
                    t.queries
                        .iter()
                        .map(|q| q.dim_selectivity(&sample, d))
                        .sum::<f64>()
                        / t.queries.len().max(1) as f64
                })
                .collect();
            TypeSignature {
                filtered_dims: t.filtered_dims.clone(),
                mean_selectivity,
                frequency: t.queries.len() as f64 / total.max(1) as f64,
            }
        })
        .collect()
}

fn same_type(a: &TypeSignature, b: &TypeSignature, eps: f64) -> bool {
    a.filtered_dims == b.filtered_dims && distance(a, b) <= eps
}

fn distance(a: &TypeSignature, b: &TypeSignature) -> f64 {
    if a.mean_selectivity.len() != b.mean_selectivity.len() {
        return f64::INFINITY;
    }
    a.mean_selectivity
        .iter()
        .zip(&b.mean_selectivity)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::{Predicate, Query};

    fn data() -> Dataset {
        Dataset::from_columns(vec![
            (0..5_000u64).collect(),
            (0..5_000u64).map(|v| (v * 31) % 5_000).collect(),
        ])
        .unwrap()
    }

    fn workload_a(offset: u64) -> Workload {
        Workload::new(
            (0..30u64)
                .map(|i| {
                    Query::count(vec![Predicate::range(
                        0,
                        offset + i * 10,
                        offset + i * 10 + 100,
                    )
                    .unwrap()])
                    .unwrap()
                })
                .collect(),
        )
    }

    fn workload_b() -> Workload {
        Workload::new(
            (0..30u64)
                .map(|i| {
                    Query::count(vec![Predicate::range(1, i * 50, i * 50 + 2_000).unwrap()])
                        .unwrap()
                })
                .collect(),
        )
    }

    #[test]
    fn identical_workload_needs_no_reoptimization() {
        let ds = data();
        let cfg = TsunamiConfig::fast();
        let monitor = WorkloadMonitor::new(&ds, &workload_a(0), &cfg);
        let report = monitor.observe(&ds, &workload_a(5), &cfg);
        assert_eq!(report.disappeared_types, 0);
        assert_eq!(report.new_types, 0);
        assert!(report.frequency_drift < 0.2, "{report:?}");
        assert!(!report.reoptimize);
    }

    #[test]
    fn replaced_workload_triggers_reoptimization() {
        let ds = data();
        let cfg = TsunamiConfig::fast();
        let monitor = WorkloadMonitor::new(&ds, &workload_a(0), &cfg);
        let report = monitor.observe(&ds, &workload_b(), &cfg);
        assert!(report.new_types > 0 || report.disappeared_types > 0);
        assert!(report.reoptimize, "{report:?}");
    }

    #[test]
    fn mixed_workload_reports_partial_drift() {
        let ds = data();
        let cfg = TsunamiConfig::fast();
        let monitor = WorkloadMonitor::new(&ds, &workload_a(0), &cfg);
        let mut mixed = workload_a(0);
        mixed.extend(&workload_b());
        let report = monitor.observe(&ds, &mixed, &cfg);
        // The original type is still present, a new one appeared.
        assert_eq!(report.disappeared_types, 0);
        assert!(report.new_types >= 1);
        assert!(report.reoptimize);
    }

    #[test]
    fn drift_threshold_is_configurable() {
        let ds = data();
        let cfg = TsunamiConfig::fast();
        let strict = WorkloadMonitor::new(&ds, &workload_a(0), &cfg).with_drift_threshold(0.0);
        // Even tiny drift now triggers re-optimization.
        let report = strict.observe(&ds, &workload_a(40), &cfg);
        assert!(report.reoptimize || report.frequency_drift == 0.0);
        assert!(!strict.reference().is_empty());
    }

    /// `n` copies of one fixed dim-0 query and `m` copies of one fixed dim-1
    /// query: repeating identical queries keeps the clustering deterministic,
    /// so drift depends only on the mixing fractions.
    fn mixed(n: usize, m: usize) -> Workload {
        let a = Query::count(vec![Predicate::range(0, 100, 200).unwrap()]).unwrap();
        let b = Query::count(vec![Predicate::range(1, 300, 2_300).unwrap()]).unwrap();
        let mut qs = vec![a; n];
        qs.extend(std::iter::repeat_n(b, m));
        Workload::new(qs)
    }

    #[test]
    fn mixing_in_a_disjoint_workload_never_decreases_drift() {
        let ds = data();
        let cfg = TsunamiConfig::fast();
        let monitor = WorkloadMonitor::new(&ds, &mixed(40, 0), &cfg);
        let mut last = -1.0f64;
        for k in 0..=40usize {
            let report = monitor.observe(&ds, &mixed(40 - k, k), &cfg);
            assert!(
                report.frequency_drift >= last - 1e-9,
                "drift decreased from {last} to {} at k={k}",
                report.frequency_drift
            );
            // With fully deterministic types the drift is exactly 2k/40:
            // k/40 of mass left the reference type and arrived in a new one.
            if k < 40 {
                assert!(
                    (report.frequency_drift - 2.0 * k as f64 / 40.0).abs() < 1e-9,
                    "k={k}: {report:?}"
                );
            }
            last = report.frequency_drift;
        }
        // The fully replaced workload is maximally drifted.
        let full = monitor.observe(&ds, &mixed(0, 40), &cfg);
        assert!((full.frequency_drift - 2.0).abs() < 1e-9, "{full:?}");
    }

    #[test]
    fn disappeared_and_new_type_counts_are_symmetric() {
        let ds = data();
        let cfg = TsunamiConfig::fast();
        let monitor_a = WorkloadMonitor::new(&ds, &workload_a(0), &cfg);
        let monitor_b = WorkloadMonitor::new(&ds, &workload_b(), &cfg);
        let a_to_b = monitor_a.observe(&ds, &workload_b(), &cfg);
        let b_to_a = monitor_b.observe(&ds, &workload_a(0), &cfg);
        // Types that disappear going A -> B are exactly the types that are
        // new going B -> A, and vice versa.
        assert_eq!(a_to_b.disappeared_types, b_to_a.new_types);
        assert_eq!(a_to_b.new_types, b_to_a.disappeared_types);
        assert!((a_to_b.frequency_drift - b_to_a.frequency_drift).abs() < 1e-9);
    }

    #[test]
    fn sliding_window_evicts_oldest_observations() {
        let ds = data();
        let cfg = TsunamiConfig::fast();
        let mut monitor = WorkloadMonitor::new(&ds, &workload_a(0), &cfg).with_window_capacity(5);
        assert_eq!(monitor.window_len(), 0);
        // An empty window never asks for re-optimization.
        assert!(!monitor.window_report(&ds, &cfg).reoptimize);

        for i in 0..8u64 {
            monitor.record(Query::count(vec![Predicate::range(0, i, i + 10).unwrap()]).unwrap());
        }
        assert_eq!(monitor.window_len(), 5);
        // The window holds exactly the 5 newest observations, oldest first.
        let lows: Vec<u64> = monitor
            .window_workload()
            .queries()
            .iter()
            .map(|q| q.predicates()[0].lo)
            .collect();
        assert_eq!(lows, vec![3, 4, 5, 6, 7]);

        // Shrinking the capacity evicts from the front.
        monitor = monitor.with_window_capacity(2);
        let lows: Vec<u64> = monitor
            .window_workload()
            .queries()
            .iter()
            .map(|q| q.predicates()[0].lo)
            .collect();
        assert_eq!(lows, vec![6, 7]);

        monitor.clear_window();
        assert_eq!(monitor.window_len(), 0);
    }

    #[test]
    fn window_report_detects_shift_after_enough_observations() {
        let ds = data();
        let cfg = TsunamiConfig::fast();
        let mut monitor = WorkloadMonitor::new(&ds, &workload_a(0), &cfg);
        // Same-type observations: no shift.
        for q in workload_a(5).queries() {
            monitor.record(q.clone());
        }
        assert!(!monitor.window_report(&ds, &cfg).reoptimize);
        // Flood the window with the disjoint workload: shift detected.
        for q in workload_b().queries() {
            monitor.record(q.clone());
        }
        for q in workload_b().queries() {
            monitor.record(q.clone());
        }
        let report = monitor.window_report(&ds, &cfg);
        assert!(report.reoptimize, "{report:?}");
    }
}
