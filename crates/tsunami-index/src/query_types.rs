//! Clustering a workload into *query types* (§4.3.1).
//!
//! Queries that filter different sets of dimensions are automatically placed
//! in different types. Within each group of queries filtering the same set of
//! `d'` dimensions, each query is embedded as a `d'`-dimensional vector of
//! per-dimension filter selectivities, and the embeddings are clustered with
//! DBSCAN (eps = 0.2 by default). DBSCAN determines the number of clusters
//! automatically; noise points become singleton types.

use tsunami_core::sample::sample_dataset;
use tsunami_core::{Dataset, Query, Workload};

/// A cluster of queries with similar selectivity characteristics.
#[derive(Debug, Clone, Default)]
pub struct QueryType {
    /// Queries belonging to this type.
    pub queries: Vec<Query>,
    /// The dimensions every query of this type filters.
    pub filtered_dims: Vec<usize>,
}

/// Clusters the workload into query types.
///
/// `data` is used to estimate per-dimension selectivities; a sample of at
/// most `sample_rows` rows keeps this cheap.
pub fn cluster_query_types(
    data: &Dataset,
    workload: &Workload,
    eps: f64,
    min_pts: usize,
    sample_rows: usize,
    seed: u64,
) -> Vec<QueryType> {
    let sample = sample_dataset(data, sample_rows, seed);
    let mut types = Vec::new();
    for group in workload.group_by_filtered_dims() {
        if group.is_empty() {
            continue;
        }
        let dims = group[0].filtered_dims();
        // Embed each query as its per-dimension selectivity vector.
        let embeddings: Vec<Vec<f64>> = group
            .iter()
            .map(|q| {
                dims.iter()
                    .map(|&d| q.dim_selectivity(&sample, d))
                    .collect()
            })
            .collect();
        let labels = dbscan(&embeddings, eps, min_pts);
        let num_clusters = labels.iter().copied().flatten().max().map_or(0, |m| m + 1);
        let mut clusters: Vec<Vec<Query>> = vec![Vec::new(); num_clusters];
        let mut noise: Vec<Query> = Vec::new();
        for (q, label) in group.into_iter().zip(labels) {
            match label {
                Some(c) => clusters[c].push(q),
                None => noise.push(q),
            }
        }
        for cluster in clusters {
            if !cluster.is_empty() {
                types.push(QueryType {
                    queries: cluster,
                    filtered_dims: dims.clone(),
                });
            }
        }
        // Noise queries each form their own singleton type.
        for q in noise {
            types.push(QueryType {
                queries: vec![q],
                filtered_dims: dims.clone(),
            });
        }
    }
    types
}

/// DBSCAN over points in Euclidean space.
///
/// Returns, for each point, `Some(cluster_id)` or `None` for noise.
pub fn dbscan(points: &[Vec<f64>], eps: f64, min_pts: usize) -> Vec<Option<usize>> {
    let n = points.len();
    let mut labels: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut cluster = 0usize;

    let neighbors = |i: usize| -> Vec<usize> {
        (0..n)
            .filter(|&j| euclidean(&points[i], &points[j]) <= eps)
            .collect()
    };

    for i in 0..n {
        if visited[i] {
            continue;
        }
        visited[i] = true;
        let nbrs = neighbors(i);
        if nbrs.len() < min_pts {
            // Tentatively noise; may be absorbed by a later cluster as a
            // border point.
            continue;
        }
        // Start a new cluster and expand it.
        let mut queue = nbrs;
        labels[i] = Some(cluster);
        let mut qi = 0;
        while qi < queue.len() {
            let j = queue[qi];
            qi += 1;
            if labels[j].is_none() {
                labels[j] = Some(cluster);
            }
            if !visited[j] {
                visited[j] = true;
                let jn = neighbors(j);
                if jn.len() >= min_pts {
                    queue.extend(jn);
                }
            }
        }
        cluster += 1;
    }
    labels
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::Predicate;

    #[test]
    fn dbscan_separates_well_separated_clusters() {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.01 * i as f64, 0.0]); // cluster near origin
            pts.push(vec![1.0 + 0.01 * i as f64, 1.0]); // cluster near (1,1)
        }
        let labels = dbscan(&pts, 0.2, 2);
        let c0 = labels[0].unwrap();
        let c1 = labels[1].unwrap();
        assert_ne!(c0, c1);
        // All even indices share c0, all odd share c1.
        for (i, l) in labels.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(*l, Some(c0));
            } else {
                assert_eq!(*l, Some(c1));
            }
        }
    }

    #[test]
    fn dbscan_marks_isolated_points_as_noise() {
        let mut pts: Vec<Vec<f64>> = (0..8).map(|i| vec![0.01 * i as f64]).collect();
        pts.push(vec![10.0]);
        let labels = dbscan(&pts, 0.2, 2);
        assert!(labels[8].is_none());
        assert!(labels[..8].iter().all(|l| l.is_some()));
    }

    fn data() -> Dataset {
        Dataset::from_columns(vec![
            (0..1000u64).collect(),
            (0..1000u64).map(|v| v % 101).collect(),
        ])
        .unwrap()
    }

    #[test]
    fn queries_filtering_different_dims_are_different_types() {
        let ds = data();
        let w = Workload::new(vec![
            Query::count(vec![Predicate::range(0, 0, 100).unwrap()]).unwrap(),
            Query::count(vec![Predicate::range(0, 200, 300).unwrap()]).unwrap(),
            Query::count(vec![Predicate::range(1, 0, 50).unwrap()]).unwrap(),
            Query::count(vec![Predicate::range(1, 10, 60).unwrap()]).unwrap(),
        ]);
        let types = cluster_query_types(&ds, &w, 0.2, 2, 500, 1);
        assert_eq!(types.len(), 2);
        assert!(types.iter().any(|t| t.filtered_dims == vec![0]));
        assert!(types.iter().any(|t| t.filtered_dims == vec![1]));
    }

    #[test]
    fn selectivity_differences_split_types_within_a_dim_group() {
        let ds = data();
        let mut queries = Vec::new();
        // Type A: very selective over dim0 (1% ranges).
        for i in 0..10u64 {
            queries.push(
                Query::count(vec![Predicate::range(0, i * 50, i * 50 + 9).unwrap()]).unwrap(),
            );
        }
        // Type B: broad over dim0 (60% ranges).
        for i in 0..10u64 {
            queries.push(Query::count(vec![Predicate::range(0, i, i + 600).unwrap()]).unwrap());
        }
        let types = cluster_query_types(&ds, &Workload::new(queries), 0.2, 2, 1000, 1);
        assert!(
            types.len() >= 2,
            "expected selective and broad types, got {}",
            types.len()
        );
        let sizes: usize = types.iter().map(|t| t.queries.len()).sum();
        assert_eq!(sizes, 20, "every query must belong to exactly one type");
    }

    #[test]
    fn empty_workload_yields_no_types() {
        let ds = data();
        let types = cluster_query_types(&ds, &Workload::default(), 0.2, 2, 100, 1);
        assert!(types.is_empty());
    }
}
