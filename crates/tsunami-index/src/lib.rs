//! Tsunami: an in-memory, read-optimized, learned multi-dimensional index
//! that is robust to correlated data and skewed query workloads.
//!
//! This crate is the reproduction of the paper's primary contribution. It is
//! a composition of two independent data structures (§3):
//!
//! * The **Grid Tree** ([`grid_tree`]) — a space-partitioning decision tree
//!   that divides the data space into non-overlapping regions such that
//!   within each region there is little *query skew* (§4). Query skew is
//!   measured as the Earth Mover's Distance between the empirical query PDF
//!   and the uniform distribution, computed per clustered *query type*.
//!
//! * The **Augmented Grid** ([`augmented_grid`]) — a generalization of
//!   Flood's uniform grid that captures *data correlation* with two extra
//!   per-dimension partitioning strategies: functional mappings and
//!   conditional CDFs (§5). Its layout `(S, P)` — skeleton plus partition
//!   counts — is optimized with Adaptive Gradient Descent against the
//!   analytic cost model.
//!
//! The composed [`TsunamiIndex`] optimizes the Grid Tree over the full data
//! and workload, then builds an independently-optimized Augmented Grid inside
//! every region that receives queries.
//!
//! When the workload later drifts (§8), the index adapts *incrementally*:
//! [`shift::WorkloadMonitor`] fingerprints observed queries against the
//! optimized-for workload (with a sliding observation window), and
//! [`TsunamiIndex::reoptimize`] reuses the sorted data and Grid-Tree
//! skeleton while re-deriving only what the shift invalidated — folding
//! back splits the new workload no longer distinguishes, re-splitting hot
//! regions locally, and re-optimizing grids only where the existing layout
//! prices as stale. See the [`index`] and [`shift`] module docs.
//!
//! # Quick start
//!
//! ```
//! use tsunami_core::{Dataset, MultiDimIndex, Predicate, Query, Workload};
//! use tsunami_index::{TsunamiConfig, TsunamiIndex};
//!
//! // A tiny 2-d dataset with a correlated second dimension.
//! let n = 2000u64;
//! let data = Dataset::from_columns(vec![
//!     (0..n).collect(),
//!     (0..n).map(|v| v * 2 + (v % 7)).collect(),
//! ]).unwrap();
//!
//! // A sample workload: range filters over dimension 0.
//! let workload = Workload::new(
//!     (0..20u64)
//!         .map(|i| {
//!             Query::count(vec![Predicate::range(0, i * 50, i * 50 + 200).unwrap()]).unwrap()
//!         })
//!         .collect(),
//! );
//!
//! let index = TsunamiIndex::build(&data, &workload, &TsunamiConfig::fast()).unwrap();
//! let q = &workload.queries()[3];
//! assert_eq!(index.execute(q), q.execute_full_scan(&data));
//! ```

pub mod augmented_grid;
pub mod config;
pub mod cube;
pub mod grid_tree;
pub mod index;
pub mod query_types;
pub mod shift;

pub use augmented_grid::{AugmentedGrid, DimStrategy, OptimizerKind, Skeleton};
pub use config::{IndexVariant, TsunamiConfig};
pub use cube::{CubeEntry, DimAgg, RegionCube};
pub use grid_tree::GridTree;
pub use index::{DeleteReport, Escalation, IngestReport, ReoptReport, TsunamiIndex, TsunamiStats};
pub use query_types::cluster_query_types;
pub use shift::{ShiftReport, WorkloadMonitor};
