//! Per-region materialized aggregate cube.
//!
//! One [`CubeEntry`] per Grid-Tree region keeps COUNT plus per-dimension
//! SUM/MIN/MAX pre-folded over the region's *live* rows. The planner turns a
//! region whose bounds are fully contained in a query into a
//! [`tsunami_core::PlanPartial`] instead of a scan range, so covered queries
//! cost O(#regions) instead of O(selected rows).
//!
//! # Validity invariant
//!
//! An entry is valid exactly as long as the region's live-row **multiset** is
//! unchanged. Aggregates are order-free, so within-region permutation
//! (re-grid, warm re-optimization, compaction of *other* regions) preserves
//! validity; only cross-region row movement, new rows, or new tombstones
//! invalidate. Maintenance therefore is:
//!
//! * **ingest** — touched regions fold the delta of their routed new rows
//!   into the existing entry ([`CubeEntry::merge`]); untouched regions carry;
//! * **delete** — regions that received new tombstones drop their entry and
//!   re-fold lazily on the next covered query; the compaction that may follow
//!   only drops already-dead rows, so it never invalidates by itself;
//! * **restructures** (reoptimize re-split/merge, rebuild) — regions whose
//!   row set changed start empty and fold lazily on first use.
//!
//! Entries are folded lazily under a [`Mutex`] so `plan(&self)` can populate
//! the cube without a mutable index. The fold itself runs outside the lock;
//! a concurrent double-fold computes the same value (folds are pure over the
//! store), so the race is benign — first writer wins.

use std::sync::Mutex;

use tsunami_core::{Dataset, PlanPartial, Value};
use tsunami_store::ColumnStore;

/// Pre-folded aggregates of one dimension over one region's live rows.
/// `min`/`max` are meaningless when the owning entry has `rows == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimAgg {
    /// Exact sum of the dimension over the live rows (u128: no overflow for
    /// any realizable store size).
    pub sum: u128,
    /// Minimum value of the dimension over the live rows.
    pub min: Value,
    /// Maximum value of the dimension over the live rows.
    pub max: Value,
}

/// COUNT plus per-dimension SUM/MIN/MAX over one region's live rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubeEntry {
    /// Number of live rows in the region.
    pub rows: u64,
    /// One [`DimAgg`] per store dimension.
    pub dims: Vec<DimAgg>,
}

impl CubeEntry {
    /// Folds an entry over a logical dataset (all rows counted as live).
    pub fn fold_dataset(ds: &Dataset) -> Self {
        let dims = (0..ds.num_dims())
            .map(|d| {
                let mut sum = 0u128;
                let mut min = Value::MAX;
                let mut max = Value::MIN;
                for &v in ds.column(d) {
                    sum += v as u128;
                    min = min.min(v);
                    max = max.max(v);
                }
                DimAgg { sum, min, max }
            })
            .collect();
        Self {
            rows: ds.len() as u64,
            dims,
        }
    }

    /// Folds an entry over the live rows of a store's physical range —
    /// tombstone-aware, decoding packed blocks as needed. Cube folds run once
    /// per (region, restructure), not per query, so the decode cost is fine.
    pub fn fold_store(store: &ColumnStore, base: usize, len: usize) -> Self {
        Self::fold_dataset(&store.live_slice_dataset(base..base + len))
    }

    /// Folds another entry's rows into this one (multiset union). The delta
    /// primitive behind incremental ingest maintenance.
    pub fn merge(&mut self, other: &CubeEntry) {
        if other.rows == 0 {
            return;
        }
        if self.rows == 0 {
            *self = other.clone();
            return;
        }
        debug_assert_eq!(self.dims.len(), other.dims.len());
        self.rows += other.rows;
        for (a, b) in self.dims.iter_mut().zip(&other.dims) {
            a.sum += b.sum;
            a.min = a.min.min(b.min);
            a.max = a.max.max(b.max);
        }
    }

    /// The entry as an executor partial for the aggregation input dimension
    /// `dim`, or `None` for an empty region (nothing to contribute).
    pub fn partial(&self, dim: usize) -> Option<PlanPartial> {
        if self.rows == 0 {
            return None;
        }
        let d = self.dims.get(dim)?;
        Some(PlanPartial {
            rows: self.rows,
            sum: d.sum,
            min: Some(d.min),
            max: Some(d.max),
        })
    }
}

/// The per-index cube: one optional entry per Grid-Tree region, in region
/// order. `None` means "not folded yet / invalidated" — the next covered
/// query folds it lazily.
#[derive(Debug, Default)]
pub struct RegionCube {
    entries: Mutex<Vec<Option<CubeEntry>>>,
}

impl RegionCube {
    /// An empty cube for `regions` regions (every entry folds lazily).
    pub fn new(regions: usize) -> Self {
        Self {
            entries: Mutex::new(vec![None; regions]),
        }
    }

    /// A cube seeded with carried entries (restructure paths that know which
    /// regions kept their live-row multiset).
    pub fn from_entries(entries: Vec<Option<CubeEntry>>) -> Self {
        Self {
            entries: Mutex::new(entries),
        }
    }

    /// Number of regions the cube tracks.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether the cube tracks no regions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A clone of every entry, for carrying across a restructure.
    pub fn snapshot(&self) -> Vec<Option<CubeEntry>> {
        self.entries.lock().unwrap().clone()
    }

    /// The entry for `region`, if currently folded.
    pub fn get(&self, region: usize) -> Option<CubeEntry> {
        self.entries.lock().unwrap().get(region).cloned().flatten()
    }

    /// Drops `region`'s entry; the next covered query re-folds it.
    pub fn invalidate(&self, region: usize) {
        if let Some(slot) = self.entries.lock().unwrap().get_mut(region) {
            *slot = None;
        }
    }

    /// The entry for `region`, folding it from the store's live rows on the
    /// first request since (in)validation. The fold runs outside the lock;
    /// on a race the first stored fold wins (both computed the same value).
    pub fn get_or_fold(
        &self,
        region: usize,
        store: &ColumnStore,
        base: usize,
        len: usize,
    ) -> CubeEntry {
        if let Some(entry) = self.get(region) {
            return entry;
        }
        let folded = CubeEntry::fold_store(store, base, len);
        let mut entries = self.entries.lock().unwrap();
        entries[region].get_or_insert(folded).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        Dataset::from_columns(vec![vec![5, 1, 9, 3], vec![10, 40, 20, 30]]).unwrap()
    }

    #[test]
    fn fold_dataset_computes_count_sum_min_max_per_dim() {
        let e = CubeEntry::fold_dataset(&ds());
        assert_eq!(e.rows, 4);
        assert_eq!(
            e.dims[0],
            DimAgg {
                sum: 18,
                min: 1,
                max: 9
            }
        );
        assert_eq!(
            e.dims[1],
            DimAgg {
                sum: 100,
                min: 10,
                max: 40
            }
        );
    }

    #[test]
    fn merge_is_multiset_union() {
        let mut a = CubeEntry::fold_dataset(&ds());
        let b = CubeEntry::fold_dataset(
            &Dataset::from_columns(vec![vec![100, 0], vec![7, 9]]).unwrap(),
        );
        a.merge(&b);
        assert_eq!(a.rows, 6);
        assert_eq!(
            a.dims[0],
            DimAgg {
                sum: 118,
                min: 0,
                max: 100
            }
        );
        assert_eq!(
            a.dims[1],
            DimAgg {
                sum: 116,
                min: 7,
                max: 40
            }
        );
    }

    #[test]
    fn merge_with_empty_sides_keeps_the_nonempty_one() {
        let folded = CubeEntry::fold_dataset(&ds());
        let empty = CubeEntry {
            rows: 0,
            dims: vec![
                DimAgg {
                    sum: 0,
                    min: Value::MAX,
                    max: Value::MIN
                };
                2
            ],
        };
        let mut a = folded.clone();
        a.merge(&empty);
        assert_eq!(a, folded);
        let mut b = empty;
        b.merge(&folded);
        assert_eq!(b, folded);
    }

    #[test]
    fn fold_store_skips_tombstoned_rows() {
        let mut store = ColumnStore::from_dataset(&ds());
        // Tombstone row 2 (values 9 / 20).
        let q = tsunami_core::Query::count(vec![tsunami_core::Predicate::range(0, 9, 9).unwrap()])
            .unwrap();
        assert_eq!(store.delete_where(&q), 1);
        let e = CubeEntry::fold_store(&store, 0, 4);
        assert_eq!(e.rows, 3);
        assert_eq!(
            e.dims[0],
            DimAgg {
                sum: 9,
                min: 1,
                max: 5
            }
        );
        assert_eq!(
            e.dims[1],
            DimAgg {
                sum: 80,
                min: 10,
                max: 40
            }
        );
    }

    #[test]
    fn cube_folds_lazily_and_invalidates() {
        let store = ColumnStore::from_dataset(&ds());
        let cube = RegionCube::new(1);
        assert_eq!(cube.get(0), None);
        let e = cube.get_or_fold(0, &store, 0, 4);
        assert_eq!(e.rows, 4);
        assert_eq!(cube.get(0), Some(e));
        cube.invalidate(0);
        assert_eq!(cube.get(0), None);
    }

    #[test]
    fn partial_carries_the_requested_dim() {
        let e = CubeEntry::fold_dataset(&ds());
        let p = e.partial(1).unwrap();
        assert_eq!(p.rows, 4);
        assert_eq!(p.sum, 100);
        assert_eq!(p.min, Some(10));
        assert_eq!(p.max, Some(40));
        assert_eq!(e.partial(7), None);
    }
}
