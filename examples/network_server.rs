//! Network serving: shard a table across K independent `Database` shards,
//! serve it over the `tsunami-server` wire protocol on loopback, and talk
//! to it with the blocking client — queries, an insert, and the typed
//! error path.
//!
//! Run with: `cargo run --release --example network_server`
//! Knobs: `TSUNAMI_SHARDS` (default 4), `TSUNAMI_BIND` (default
//! `127.0.0.1:0` — port 0 picks a free port).

use std::sync::{Arc, RwLock};

use tsunami_core::{Aggregation, Dataset, Predicate, Query, Workload};
use tsunami_server::{Client, ClientError, Server, ServerConfig};
use tsunami_suite::{IndexSpec, ShardedDatabase};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------------------------
    // 1. A sharded database: rows hash-partitioned across K shards, each
    //    with its own Tsunami index specialized to the workload.
    // ---------------------------------------------------------------------
    let shards: usize = std::env::var("TSUNAMI_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let n: u64 = 60_000;
    let data = Dataset::from_columns(vec![
        (0..n).collect(),
        (0..n).map(|i| 1 + (i * 7919) % 50).collect(),
        (0..n)
            .map(|i| (1 + (i * 7919) % 50) * 1_000 + i % 500)
            .collect(),
    ])?;
    let workload = Workload::new(
        (0..40u64)
            .map(|i| {
                Query::count(vec![
                    Predicate::range(0, i * 1_000, i * 1_000 + 5_000).unwrap()
                ])
                .unwrap()
            })
            .collect(),
    );
    let mut db = ShardedDatabase::new(shards);
    let table = db.create_table(
        "orders",
        &["order_id", "quantity", "price"],
        &data,
        &workload,
        &IndexSpec::tsunami(),
    )?;
    println!(
        "sharded table: {} rows across {} shards",
        table.num_rows(),
        table.num_shards()
    );

    // ---------------------------------------------------------------------
    // 2. Serve it. Port 0 binds an ephemeral port; the handle reports it.
    // ---------------------------------------------------------------------
    let addr = std::env::var("TSUNAMI_BIND").unwrap_or_else(|_| "127.0.0.1:0".to_string());
    let mut server = Server::spawn(
        Arc::new(RwLock::new(db)),
        ServerConfig {
            addr,
            ..ServerConfig::default()
        },
    )?;
    println!("serving on {}", server.addr());

    // ---------------------------------------------------------------------
    // 3. A client round trip: ping, all five aggregations, an insert.
    // ---------------------------------------------------------------------
    let mut client = Client::connect(server.addr())?;
    client.ping()?;
    let band = vec![Predicate::range(0, 10_000, 19_999).unwrap()];
    for agg in [
        Aggregation::Count,
        Aggregation::Sum(2),
        Aggregation::Min(2),
        Aggregation::Max(2),
        Aggregation::Avg(2),
    ] {
        let result = client.query("orders", band.clone(), agg)?;
        println!("  {agg:?} over order_id in [10000, 19999] = {result}");
    }

    let appended = client.insert(
        "orders",
        (n..n + 1_000).map(|i| vec![i, 7, 7_777]).collect(),
    )?;
    let count = client.query("orders", vec![], Aggregation::Count)?;
    println!("inserted {appended} rows over the wire; total count = {count}");

    // Semantic errors come back typed, and the connection keeps serving.
    match client.query("no_such_table", vec![], Aggregation::Count) {
        Err(ClientError::Server { code, message }) => {
            println!("typed error as expected: code={code} ({message})")
        }
        other => panic!("expected a typed server error, got {other:?}"),
    }
    client.ping()?;

    // ---------------------------------------------------------------------
    // 4. Graceful shutdown: in-flight responses finish, threads join.
    // ---------------------------------------------------------------------
    let stats = server.stats();
    println!(
        "served {} queries, {} rows inserted, {} errors",
        stats.queries.load(std::sync::atomic::Ordering::Relaxed),
        stats
            .rows_inserted
            .load(std::sync::atomic::Ordering::Relaxed),
        stats.errors.load(std::sync::atomic::Ordering::Relaxed),
    );
    server.shutdown();
    println!("server shut down cleanly");
    Ok(())
}
