//! Quickstart: build a Tsunami index over a small correlated dataset and run
//! a few range-aggregation queries.
//!
//! Run with: `cargo run --release --example quickstart`

use tsunami_core::{Aggregation, Dataset, MultiDimIndex, Predicate, Query, Workload};
use tsunami_index::{TsunamiConfig, TsunamiIndex};

fn main() {
    // ---------------------------------------------------------------------
    // 1. Build a small 3-dimensional dataset.
    //    dim 0: order id (uniform), dim 1: price (correlated with quantity),
    //    dim 2: quantity.
    // ---------------------------------------------------------------------
    let n: u64 = 50_000;
    let order_id: Vec<u64> = (0..n).collect();
    let quantity: Vec<u64> = (0..n).map(|i| 1 + (i * 7919) % 50).collect();
    let price: Vec<u64> = quantity
        .iter()
        .map(|&q| q * 1_000 + (q * 37) % 500)
        .collect();
    let data = Dataset::from_columns(vec![order_id, price, quantity]).expect("valid dataset");
    println!("dataset: {} rows x {} dims", data.len(), data.num_dims());

    // ---------------------------------------------------------------------
    // 2. Describe the workload Tsunami should optimize for: recent orders
    //    (high order ids) filtered by price bands.
    // ---------------------------------------------------------------------
    let workload = Workload::new(
        (0..50u64)
            .map(|i| {
                let id_lo = n * 8 / 10 + (i * 97) % (n / 10);
                let price_lo = 5_000 + (i % 40) * 1_000;
                Query::count(vec![
                    Predicate::range(0, id_lo, id_lo + n / 50).unwrap(),
                    Predicate::range(1, price_lo, price_lo + 3_000).unwrap(),
                ])
                .unwrap()
            })
            .collect(),
    );

    // ---------------------------------------------------------------------
    // 3. Build the index (offline optimization + data reorganization).
    // ---------------------------------------------------------------------
    let index = TsunamiIndex::build(&data, &workload, &TsunamiConfig::default())
        .expect("index build succeeds");
    let stats = index.stats();
    println!(
        "built Tsunami: {} grid-tree nodes, {} regions, {} cells, {} bytes, {:.3}s optimize + {:.3}s sort",
        stats.num_grid_tree_nodes,
        stats.num_leaf_regions,
        stats.total_grid_cells,
        index.size_bytes(),
        index.build_timing().optimize_secs,
        index.build_timing().sort_secs,
    );

    // ---------------------------------------------------------------------
    // 4. Run queries: COUNT and SUM aggregations with range predicates.
    // ---------------------------------------------------------------------
    let count_query = Query::count(vec![
        Predicate::range(0, n * 9 / 10, n - 1).unwrap(),
        Predicate::range(1, 10_000, 20_000).unwrap(),
    ])
    .unwrap();
    println!(
        "recent orders priced 10k-20k: {:?} (full scan agrees: {:?})",
        index.execute(&count_query),
        count_query.execute_full_scan(&data)
    );

    let sum_query = Query::new(
        vec![Predicate::range(2, 40, 50).unwrap()],
        Aggregation::Sum(1),
    )
    .unwrap();
    println!(
        "total revenue of large orders (quantity 40-50): {:?}",
        index.execute(&sum_query)
    );

    let (result, scan) = index.execute_with_stats(&count_query);
    println!(
        "diagnostics: {:?} scanned {} of {} rows across {} ranges",
        result,
        scan.points_scanned,
        data.len(),
        scan.ranges_scanned
    );
}
