//! Quickstart: register a table in the engine's `Database`, run fluent
//! schema-validated queries over a Tsunami index, and push a batch of
//! queries through the concurrent `Scheduler`.
//!
//! Run with: `cargo run --release --example quickstart`

use tsunami_core::{Dataset, TsunamiError};
use tsunami_core::{Predicate, Query, Workload};
use tsunami_suite::{Database, IndexSpec, Scheduler};

fn main() -> Result<(), TsunamiError> {
    // ---------------------------------------------------------------------
    // 1. Build a small 3-dimensional dataset.
    //    order_id: uniform; price correlated with quantity.
    // ---------------------------------------------------------------------
    let n: u64 = 50_000;
    let order_id: Vec<u64> = (0..n).collect();
    let quantity: Vec<u64> = (0..n).map(|i| 1 + (i * 7919) % 50).collect();
    let price: Vec<u64> = quantity
        .iter()
        .map(|&q| q * 1_000 + (q * 37) % 500)
        .collect();
    let data = Dataset::from_columns(vec![order_id, price, quantity])?;
    println!("dataset: {} rows x {} dims", data.len(), data.num_dims());

    // ---------------------------------------------------------------------
    // 2. Describe the workload Tsunami should optimize for: recent orders
    //    (high order ids) filtered by price bands.
    // ---------------------------------------------------------------------
    let workload = Workload::new(
        (0..50u64)
            .map(|i| {
                let id_lo = n * 8 / 10 + (i * 97) % (n / 10);
                let price_lo = 5_000 + (i % 40) * 1_000;
                Query::count(vec![
                    Predicate::range(0, id_lo, id_lo + n / 50).unwrap(),
                    Predicate::range(1, price_lo, price_lo + 3_000).unwrap(),
                ])
                .unwrap()
            })
            .collect(),
    );

    // ---------------------------------------------------------------------
    // 3. Register the table: names the columns and builds the index
    //    (offline optimization + data reorganization) from a spec.
    // ---------------------------------------------------------------------
    let mut db = Database::new();
    let orders = db.create_table(
        "orders",
        &["order_id", "price", "quantity"],
        data,
        &workload,
        &IndexSpec::tsunami(),
    )?;
    println!(
        "registered table '{}' over a {} index ({} bytes, {:.3}s optimize + {:.3}s sort)",
        orders.name(),
        orders.index().name(),
        orders.index().size_bytes(),
        orders.index().build_timing().optimize_secs,
        orders.index().build_timing().sort_secs,
    );

    // ---------------------------------------------------------------------
    // 4. Fluent queries: named columns, validated at the boundary.
    // ---------------------------------------------------------------------
    let recent = db
        .table("orders")?
        .query()
        .range("order_id", n * 9 / 10, n - 1)?
        .range("price", 10_000, 20_000)?
        .execute()?;
    println!("recent orders priced 10k-20k: {recent}");

    let revenue = orders
        .query()
        .range("quantity", 40, 50)?
        .sum("price")?
        .execute()?;
    println!("total revenue of large orders (quantity 40-50): {revenue}");

    // Mistakes are errors, not silent mis-scans:
    assert!(orders.query().range("pirce", 0, 1).is_err()); // typo'd column
    assert!(orders.query().range("price", 9, 3).is_err()); // lo > hi

    // Diagnostics come from the same fluent surface.
    let (result, scan) = orders
        .query()
        .range("order_id", n * 9 / 10, n - 1)?
        .range("price", 10_000, 20_000)?
        .execute_with_stats()?;
    println!(
        "diagnostics: {result} scanned {} of {} rows across {} ranges",
        scan.points_scanned,
        orders.num_rows(),
        scan.ranges_scanned
    );

    // ---------------------------------------------------------------------
    // 5. Concurrent execution: prepare the whole workload once, then let a
    //    worker pool run it (inter-query parallelism).
    // ---------------------------------------------------------------------
    let prepared = orders.prepare_workload(&workload)?;
    let scheduler = Scheduler::new(4);
    let results = scheduler.execute_batch(&prepared)?;
    let serial_first = prepared[0].execute();
    println!(
        "scheduler ran {} queries on {} workers (first result {} == serial {})",
        results.len(),
        scheduler.worker_count(),
        results[0],
        serial_first,
    );
    assert_eq!(results[0], serial_first);
    Ok(())
}
