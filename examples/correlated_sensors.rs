//! Correlated sensors: demonstrates the Augmented Grid's correlation-aware
//! strategies (functional mappings and conditional CDFs) on a
//! performance-monitoring workload where CPU, load, and memory usage track
//! each other — with the comparison tables registered in one engine
//! `Database`.
//!
//! Run with: `cargo run --release --example correlated_sensors`

use tsunami_core::{CostModel, TsunamiError};
use tsunami_flood::FloodConfig;
use tsunami_index::augmented_grid::{optimize_layout, OptimizerKind};
use tsunami_index::{IndexVariant, TsunamiConfig};
use tsunami_suite::{Database, IndexSpec};
use tsunami_workloads::perfmon;

fn main() -> Result<(), TsunamiError> {
    let rows = 40_000;
    let data = perfmon::generate(rows, 11);
    let workload = perfmon::workload(&data, 25, 12);
    println!(
        "perfmon dataset: {} rows x {} dims, {} queries",
        data.len(),
        data.num_dims(),
        workload.len()
    );

    // Ask the optimizer what layout it would choose for a single Augmented
    // Grid over the whole space, and show the skeleton it discovered.
    let cost = CostModel::default();
    // Moderate build effort (the benchmark harness's settings) so the
    // example finishes in seconds; the defaults search much harder.
    let config = TsunamiConfig {
        optimizer_sample_size: 1_200,
        optimizer_max_iters: 10,
        max_cells_per_grid: 1 << 14,
        max_tree_depth: 5,
        ..TsunamiConfig::default()
    };
    let layout = optimize_layout(&data, &workload, &cost, &config, OptimizerKind::Adaptive);
    println!("\nAGD-chosen skeleton: {}", layout.skeleton);
    println!("partition counts:    {:?}", layout.partitions);
    println!(
        "predicted avg cost:  {:.0} (cost-model units)",
        layout.predicted_cost
    );

    // Register Flood, the Augmented-Grid-only ablation (no Grid Tree), and
    // the full Tsunami index over the same data — then compare scan volumes.
    let mut db = Database::new();
    let flood_config = FloodConfig {
        max_cells: 1 << 15,
        sample_size: 1_500,
        max_iters: 12,
        ..FloodConfig::default()
    };
    for (name, spec) in [
        ("flood", IndexSpec::Flood(flood_config)),
        (
            "ag_only",
            IndexSpec::Tsunami(config.clone().with_variant(IndexVariant::AugmentedGridOnly)),
        ),
        ("tsunami", IndexSpec::Tsunami(config)),
    ] {
        db.create_table(name, &perfmon::COLUMNS, data.clone(), &workload, &spec)?;
    }

    // On this skewed monitoring workload the whole-space Augmented Grid
    // typically degenerates (correlation strategies alone cannot fix query
    // skew — §4's motivation for the Grid Tree), while full Tsunami's
    // per-region grids cut the scan volume well below Flood's.
    println!(
        "\n{:<22} {:>16} {:>14}",
        "index", "avg scanned rows", "size (KiB)"
    );
    for table in db.tables() {
        let mut scanned = 0usize;
        for q in table.prepare_workload(&workload)? {
            let (_, stats) = q.execute_with_stats();
            scanned += stats.points_scanned;
        }
        println!(
            "{:<22} {:>16.0} {:>14.1}",
            table.index().name(),
            scanned as f64 / workload.len() as f64,
            table.index().size_bytes() as f64 / 1024.0
        );
    }

    // An operations-monitoring question: "when did machines 100..120 run hot
    // (high user CPU and high 1-minute load) during the last week?"
    let week = 7 * 24 * 60;
    let hot = db
        .table("tsunami")?
        .query()
        .range("time", perfmon::TIME_DOMAIN - week, perfmon::TIME_DOMAIN)?
        .range("machine", 100, 120)?
        .range("cpu_user", 8_000, 10_000)?
        .range("load1", 4_000, 20_000)?
        .prepare()?;
    println!(
        "\nhot samples for machines 100-120 in the last week: {}",
        hot.execute()
    );
    assert_eq!(hot.execute(), hot.execute_oracle());
    Ok(())
}
