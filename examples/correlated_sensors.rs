//! Correlated sensors: demonstrates the Augmented Grid's correlation-aware
//! strategies (functional mappings and conditional CDFs) on a
//! performance-monitoring workload where CPU, load, and memory usage track
//! each other.
//!
//! Run with: `cargo run --release --example correlated_sensors`

use tsunami_core::{CostModel, MultiDimIndex, Predicate, Query};
use tsunami_flood::{FloodConfig, FloodIndex};
use tsunami_index::augmented_grid::{optimize_layout, OptimizerKind};
use tsunami_index::{IndexVariant, TsunamiConfig, TsunamiIndex};
use tsunami_workloads::perfmon;

fn main() {
    let rows = 80_000;
    let data = perfmon::generate(rows, 11);
    let workload = perfmon::workload(&data, 25, 12);
    println!(
        "perfmon dataset: {} rows x {} dims, {} queries",
        data.len(),
        data.num_dims(),
        workload.len()
    );

    // Ask the optimizer what layout it would choose for a single Augmented
    // Grid over the whole space, and show the skeleton it discovered.
    let cost = CostModel::default();
    let config = TsunamiConfig::default();
    let layout = optimize_layout(&data, &workload, &cost, &config, OptimizerKind::Adaptive);
    println!("\nAGD-chosen skeleton: {}", layout.skeleton);
    println!("partition counts:    {:?}", layout.partitions);
    println!(
        "predicted avg cost:  {:.0} (cost-model units)",
        layout.predicted_cost
    );

    // Build the Augmented-Grid-only index (no Grid Tree), the full Tsunami
    // index, and Flood — then compare scan volumes on the workload.
    let ag_only = TsunamiIndex::build_with_cost(
        &data,
        &workload,
        &cost,
        &config.clone().with_variant(IndexVariant::AugmentedGridOnly),
    )
    .expect("augmented-grid build");
    let tsunami =
        TsunamiIndex::build_with_cost(&data, &workload, &cost, &config).expect("tsunami build");
    let flood = FloodIndex::build(&data, &workload, &cost, &FloodConfig::default());

    println!(
        "\n{:<22} {:>16} {:>14}",
        "index", "avg scanned rows", "size (KiB)"
    );
    for index in [&flood as &dyn MultiDimIndex, &ag_only, &tsunami] {
        let mut scanned = 0usize;
        for q in workload.queries() {
            let (_, stats) = index.execute_with_stats(q);
            scanned += stats.points_scanned;
        }
        println!(
            "{:<22} {:>16.0} {:>14.1}",
            index.name(),
            scanned as f64 / workload.len() as f64,
            index.size_bytes() as f64 / 1024.0
        );
    }

    // An operations-monitoring question: "when did machines 100..120 run hot
    // (high user CPU and high 1-minute load) during the last week?"
    let week = 7 * 24 * 60;
    let q = Query::count(vec![
        Predicate::range(0, perfmon::TIME_DOMAIN - week, perfmon::TIME_DOMAIN).unwrap(),
        Predicate::range(1, 100, 120).unwrap(),
        Predicate::range(2, 8_000, 10_000).unwrap(),
        Predicate::range(4, 4_000, 20_000).unwrap(),
    ])
    .unwrap();
    println!(
        "\nhot samples for machines 100-120 in the last week: {:?}",
        tsunami.execute(&q)
    );
    assert_eq!(tsunami.execute(&q), q.execute_full_scan(&data));
}
