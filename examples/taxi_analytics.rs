//! Taxi analytics: the paper's motivating scenario — a skewed, correlated
//! trip-record workload — comparing Tsunami against Flood and a tuned k-d
//! tree on the same column store.
//!
//! Run with: `cargo run --release --example taxi_analytics`

use tsunami_baselines::{tune_page_size, KdTree};
use tsunami_core::{CostModel, MultiDimIndex, Predicate, Query};
use tsunami_flood::{FloodConfig, FloodIndex};
use tsunami_index::{TsunamiConfig, TsunamiIndex};
use tsunami_workloads::taxi;

fn main() {
    // Generate a Taxi-like dataset (correlated fares/distances, skewed
    // passenger counts) and its 6-query-type workload.
    let rows = 80_000;
    let data = taxi::generate(rows, 7);
    let workload = taxi::workload(&data, 25, 8);
    println!(
        "taxi dataset: {} rows x {} dims ({} queries in {} types)",
        data.len(),
        data.num_dims(),
        workload.len(),
        workload.group_by_filtered_dims().len()
    );

    let cost = CostModel::calibrate();
    println!(
        "calibrated cost model: w0={:.1}ns/range w1={:.2}ns/value",
        cost.w0, cost.w1
    );

    // Build the three indexes.
    let tsunami = TsunamiIndex::build_with_cost(&data, &workload, &cost, &TsunamiConfig::default())
        .expect("tsunami build");
    let flood = FloodIndex::build(&data, &workload, &cost, &FloodConfig::default());
    let tuned = tune_page_size(&data, &workload, &[256, 1024, 4096], |d, w, ps| {
        KdTree::build(d, w, ps)
    });
    let kdtree = KdTree::build(&data, &workload, tuned.best_page_size);

    // Measure average query latency for each index.
    let indexes: Vec<&dyn MultiDimIndex> = vec![&tsunami, &flood, &kdtree];
    println!(
        "\n{:<12} {:>14} {:>14} {:>18}",
        "index", "avg query (us)", "size (KiB)", "avg points scanned"
    );
    for index in indexes {
        let mut scanned = 0usize;
        let start = std::time::Instant::now();
        for q in workload.queries() {
            let (_, stats) = index.execute_with_stats(q);
            scanned += stats.points_scanned;
        }
        let avg_us = start.elapsed().as_secs_f64() * 1e6 / workload.len() as f64;
        println!(
            "{:<12} {:>14.1} {:>14.1} {:>18.0}",
            index.name(),
            avg_us,
            index.size_bytes() as f64 / 1024.0,
            scanned as f64 / workload.len() as f64
        );
    }

    // A concrete analytics question from the paper's description: how common
    // were single-passenger, short-distance trips in the most recent month?
    let recent_month_start = taxi::TIME_DOMAIN - 30 * 24 * 60;
    let q = Query::count(vec![
        Predicate::range(0, recent_month_start, taxi::TIME_DOMAIN).unwrap(),
        Predicate::range(2, 0, 300).unwrap(),
        Predicate::eq(6, 1),
    ])
    .unwrap();
    println!(
        "\nsingle-passenger short trips in the last month: {:?}",
        tsunami.execute(&q)
    );
    assert_eq!(tsunami.execute(&q), q.execute_full_scan(&data));

    // Show Table-4-style structure statistics for the built Tsunami index.
    let stats = tsunami.stats();
    println!(
        "tsunami structure: {} regions (depth {}), {:.2} FMs/region, {:.2} CCDFs/region, {} cells",
        stats.num_leaf_regions,
        stats.grid_tree_depth,
        stats.avg_fms_per_region,
        stats.avg_ccdfs_per_region,
        stats.total_grid_cells
    );
}
