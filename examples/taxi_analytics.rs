//! Taxi analytics: the paper's motivating scenario — a skewed, correlated
//! trip-record workload — comparing Tsunami against Flood and a tuned k-d
//! tree, all registered as tables of one engine `Database`, then serving a
//! multi-client burst through the `Scheduler`.
//!
//! Run with: `cargo run --release --example taxi_analytics`

use tsunami_core::{CostModel, TsunamiError};
use tsunami_flood::FloodConfig;
use tsunami_index::TsunamiConfig;
use tsunami_suite::{Database, IndexSpec, PageSize, Scheduler};
use tsunami_workloads::taxi;

/// Demo-scale build-effort configs so the example finishes in seconds;
/// `*Config::default()` searches much harder (use it — and the benchmark
/// harness's settings — for real measurements via the `repro` binary).
fn tsunami_config() -> TsunamiConfig {
    TsunamiConfig::fast()
}

fn flood_config() -> FloodConfig {
    FloodConfig::fast()
}

fn main() -> Result<(), TsunamiError> {
    // Generate a Taxi-like dataset (correlated fares/distances, skewed
    // passenger counts) and its 6-query-type workload.
    let rows = 20_000;
    let data = taxi::generate(rows, 7);
    let workload = taxi::workload(&data, 25, 8);
    println!(
        "taxi dataset: {} rows x {} dims ({} queries in {} types)",
        data.len(),
        data.num_dims(),
        workload.len(),
        workload.group_by_filtered_dims().len()
    );

    // The default cost model keeps the demo deterministic across machines.
    // (`CostModel::calibrate()` measures the host instead; on hosts where it
    // reports a very low w0/w1 ratio the optimizer trades ranges for cells
    // aggressively, which can blow up layout size — tune with care.)
    let cost = CostModel::default();
    println!(
        "cost model: w0={:.1}ns/range w1={:.2}ns/value",
        cost.w0, cost.w1
    );

    // Register the same dataset under three index families.
    let mut db = Database::with_cost_model(cost);
    for spec in [
        IndexSpec::Tsunami(tsunami_config()),
        IndexSpec::Flood(flood_config()),
        IndexSpec::KdTree(PageSize::TunedOver(vec![256, 1024, 4096])),
    ] {
        db.create_table(spec.label(), &taxi::COLUMNS, data.clone(), &workload, &spec)?;
    }

    // Measure average query latency for each table.
    println!(
        "\n{:<12} {:>14} {:>14} {:>18}",
        "index", "avg query (us)", "size (KiB)", "avg points scanned"
    );
    for table in db.tables() {
        let prepared = table.prepare_workload(&workload)?;
        let mut scanned = 0usize;
        let start = std::time::Instant::now();
        for q in &prepared {
            let (_, stats) = q.execute_with_stats();
            scanned += stats.points_scanned;
        }
        let avg_us = start.elapsed().as_secs_f64() * 1e6 / prepared.len() as f64;
        println!(
            "{:<12} {:>14.1} {:>14.1} {:>18.0}",
            table.name(),
            avg_us,
            table.index().size_bytes() as f64 / 1024.0,
            scanned as f64 / prepared.len() as f64
        );
    }

    // A concrete analytics question from the paper's description: how common
    // were single-passenger, short-distance trips in the most recent month?
    let trips = db.table("Tsunami")?;
    let recent_month_start = taxi::TIME_DOMAIN - 30 * 24 * 60;
    let short_single = trips
        .query()
        .range("pickup_time", recent_month_start, taxi::TIME_DOMAIN)?
        .range("trip_distance", 0, 300)?
        .eq("passenger_count", 1)?
        .prepare()?;
    println!(
        "\nsingle-passenger short trips in the last month: {}",
        short_single.execute()
    );
    assert_eq!(short_single.execute(), short_single.execute_oracle());

    // Serve a concurrent burst: every workload query plus the ad-hoc one,
    // across all three tables, through one scheduler.
    let mut burst = Vec::new();
    for table in db.tables() {
        burst.extend(table.prepare_workload(&workload)?);
    }
    burst.push(short_single);
    let scheduler = Scheduler::new(4);
    let start = std::time::Instant::now();
    let results = scheduler.execute_batch(&burst)?;
    let secs = start.elapsed().as_secs_f64();
    println!(
        "scheduler burst: {} queries over {} tables on {} workers in {:.1}ms ({:.0} QPS)",
        results.len(),
        db.num_tables(),
        scheduler.worker_count(),
        secs * 1e3,
        results.len() as f64 / secs
    );
    Ok(())
}
