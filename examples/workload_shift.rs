//! Workload shift: the Fig 9a scenario through the engine facade. A table's
//! Tsunami index is optimized for one TPC-H-like workload; at "midnight" the
//! workload is replaced by five new query types, performance degrades, and a
//! `Database::reindex` restores it.
//!
//! Run with: `cargo run --release --example workload_shift`

use std::time::Instant;

use tsunami_core::{TsunamiError, Workload};
use tsunami_index::TsunamiConfig;
use tsunami_suite::{Database, IndexSpec, Table};
use tsunami_workloads::tpch;

fn average_query_us(table: &Table, workload: &Workload) -> Result<f64, TsunamiError> {
    let prepared = table.prepare_workload(workload)?;
    let start = Instant::now();
    for q in &prepared {
        std::hint::black_box(q.execute());
    }
    Ok(start.elapsed().as_secs_f64() * 1e6 / prepared.len() as f64)
}

fn main() -> Result<(), TsunamiError> {
    let rows = 40_000;
    let data = tpch::generate(rows, 3);
    let day_workload = tpch::workload(&data, 30, 4);
    let night_workload = tpch::shifted_workload(&data, 30, 5);
    println!(
        "lineitem-like dataset: {} rows x {} dims",
        data.len(),
        data.num_dims()
    );

    // Phase 1: optimized for the daytime workload. Moderate build effort
    // (the benchmark harness's settings) keeps the two index builds quick.
    let spec = IndexSpec::Tsunami(TsunamiConfig {
        optimizer_sample_size: 800,
        optimizer_max_iters: 6,
        max_cells_per_grid: 1 << 13,
        max_tree_depth: 5,
        ..TsunamiConfig::default()
    });
    let mut db = Database::new();
    let stale = db.create_table("lineitem", &tpch::COLUMNS, data, &day_workload, &spec)?;
    let day_us = average_query_us(&stale, &day_workload)?;
    println!("[before shift]  avg query on daytime workload:   {day_us:8.1} us");

    // Phase 2: the workload shifts at midnight; the stale layout suffers.
    let stale_us = average_query_us(&stale, &night_workload)?;
    println!("[after shift]   avg query on new workload (stale): {stale_us:8.1} us");

    // Phase 3: re-optimize the table's layout in place. The old handle keeps
    // serving (stale) answers until dropped — a zero-downtime swap.
    let t0 = Instant::now();
    let fresh = db.reindex("lineitem", &night_workload, &spec)?;
    let rebuild_secs = t0.elapsed().as_secs_f64();
    let fresh_us = average_query_us(&fresh, &night_workload)?;
    println!(
        "[re-optimized]  avg query on new workload (fresh): {fresh_us:8.1} us  (re-optimization + re-organization took {rebuild_secs:.2}s)"
    );

    let recovery = stale_us / fresh_us.max(1e-9);
    println!(
        "re-optimization recovered a {recovery:.1}x latency improvement on the shifted workload"
    );

    // Correctness is never affected by staleness, only performance.
    for q in night_workload.queries().iter().take(10) {
        assert_eq!(stale.execute(q)?, fresh.execute(q)?);
    }
    println!("stale and fresh table handles agree on all checked query results");
    Ok(())
}
