//! Workload shift: the Fig 9a scenario through the engine facade, end to
//! end. A table's Tsunami index is optimized for one TPC-H-like workload; at
//! "midnight" the workload is replaced by five new query types, performance
//! degrades, the table's observation log detects the shift, and
//! `Database::auto_reoptimize` adapts the layout *incrementally* — the Grid
//! Tree and sorted data are reused, splits the new workload no longer
//! distinguishes are folded back, and only the regions whose query mix
//! actually changed are re-optimized. A full `reindex` is run last for
//! comparison: the incremental path should land near its query latency at a
//! fraction of its cost.
//!
//! Run with: `cargo run --release --example workload_shift`

use std::time::Instant;

use tsunami_core::{TsunamiError, Workload};
use tsunami_index::TsunamiConfig;
use tsunami_suite::{Database, IndexSpec, Table};
use tsunami_workloads::tpch;

fn average_query_us(table: &Table, workload: &Workload) -> Result<f64, TsunamiError> {
    let prepared = table.prepare_workload(workload)?;
    let start = Instant::now();
    for q in &prepared {
        std::hint::black_box(q.execute());
    }
    Ok(start.elapsed().as_secs_f64() * 1e6 / prepared.len() as f64)
}

fn main() -> Result<(), TsunamiError> {
    let rows = 40_000;
    let data = tpch::generate(rows, 3);
    let day_workload = tpch::workload(&data, 30, 4);
    let night_workload = tpch::shifted_workload(&data, 30, 5);
    println!(
        "lineitem-like dataset: {} rows x {} dims",
        data.len(),
        data.num_dims()
    );

    // Phase 1: optimized for the daytime workload. Moderate build effort
    // (the benchmark harness's settings) keeps the index builds quick.
    let spec = IndexSpec::Tsunami(TsunamiConfig {
        optimizer_sample_size: 800,
        optimizer_max_iters: 6,
        max_cells_per_grid: 1 << 13,
        max_tree_depth: 5,
        ..TsunamiConfig::default()
    });
    let mut db = Database::new();
    let stale = db.create_table("lineitem", &tpch::COLUMNS, data, &day_workload, &spec)?;
    let day_us = average_query_us(&stale, &day_workload)?;
    println!("[before shift]  avg query on daytime workload:      {day_us:8.1} us");

    // Phase 2: the workload shifts at midnight; the stale layout suffers.
    // Production queries are fed to the table's observation log as they are
    // served — this is all the bookkeeping the monitor needs.
    let stale_us = average_query_us(&stale, &night_workload)?;
    println!("[after shift]   avg query on new workload (stale):   {stale_us:8.1} us");
    for q in night_workload.queries() {
        stale.record_query(q)?;
    }

    // Phase 3: the engine notices the drift on its own. `auto_reoptimize`
    // compares the observation log against the workload the layout was
    // optimized for and — only because the mix shifted — re-optimizes
    // incrementally: Grid Tree and sorted data reused, stale splits folded
    // back, hot regions re-split and re-optimized, cold regions untouched.
    let t0 = Instant::now();
    let fresh = db
        .auto_reoptimize("lineitem", &spec)?
        .expect("a fully replaced workload must trigger re-optimization");
    let reopt_secs = t0.elapsed().as_secs_f64();
    let fresh_us = average_query_us(&fresh, &night_workload)?;
    println!(
        "[incremental]   avg query on new workload (re-opt):  {fresh_us:8.1} us  (incremental re-optimization took {reopt_secs:.2}s)"
    );

    // Phase 4: what a from-scratch rebuild would have cost, for comparison.
    // The old handle keeps serving (stale) answers throughout — both paths
    // are zero-downtime swaps.
    let t0 = Instant::now();
    let rebuilt = db.reindex("lineitem", &night_workload, &spec)?;
    let rebuild_secs = t0.elapsed().as_secs_f64();
    let rebuilt_us = average_query_us(&rebuilt, &night_workload)?;
    println!(
        "[full rebuild]  avg query on new workload (fresh):   {rebuilt_us:8.1} us  (rebuild took {rebuild_secs:.2}s)"
    );

    let recovery = stale_us / fresh_us.max(1e-9);
    println!(
        "\nincremental re-optimization recovered a {recovery:.1}x latency improvement \
         at {:.0}% of the rebuild cost",
        100.0 * reopt_secs / rebuild_secs.max(1e-9)
    );

    // Correctness is never affected by staleness, only performance.
    for q in night_workload.queries().iter().take(10) {
        assert_eq!(stale.execute(q)?, fresh.execute(q)?);
        assert_eq!(fresh.execute(q)?, rebuilt.execute(q)?);
    }
    println!("stale, incrementally re-optimized, and rebuilt handles agree on all checked results");
    Ok(())
}
