//! Workload shift: the Fig 9a scenario. A Tsunami index is optimized for one
//! TPC-H-like workload; at "midnight" the workload is replaced by five new
//! query types, performance degrades, and a re-optimization restores it.
//!
//! Run with: `cargo run --release --example workload_shift`

use std::time::Instant;

use tsunami_core::MultiDimIndex;
use tsunami_core::Workload;
use tsunami_index::{TsunamiConfig, TsunamiIndex};
use tsunami_workloads::tpch;

fn average_query_us(index: &dyn MultiDimIndex, workload: &Workload) -> f64 {
    let start = Instant::now();
    for q in workload.queries() {
        std::hint::black_box(index.execute(q));
    }
    start.elapsed().as_secs_f64() * 1e6 / workload.len() as f64
}

fn main() {
    let rows = 80_000;
    let data = tpch::generate(rows, 3);
    let day_workload = tpch::workload(&data, 30, 4);
    let night_workload = tpch::shifted_workload(&data, 30, 5);
    println!(
        "lineitem-like dataset: {} rows x {} dims",
        data.len(),
        data.num_dims()
    );

    // Phase 1: optimized for the daytime workload.
    let config = TsunamiConfig::default();
    let index = TsunamiIndex::build(&data, &day_workload, &config).expect("build");
    let day_us = average_query_us(&index, &day_workload);
    println!("[before shift]  avg query on daytime workload:   {day_us:8.1} us");

    // Phase 2: the workload shifts at midnight; the stale layout suffers.
    let stale_us = average_query_us(&index, &night_workload);
    println!("[after shift]   avg query on new workload (stale): {stale_us:8.1} us");

    // Phase 3: Tsunami re-optimizes its layout and reorganizes the records.
    let t0 = Instant::now();
    let reoptimized = TsunamiIndex::build(&data, &night_workload, &config).expect("rebuild");
    let rebuild_secs = t0.elapsed().as_secs_f64();
    let fresh_us = average_query_us(&reoptimized, &night_workload);
    println!(
        "[re-optimized]  avg query on new workload (fresh): {fresh_us:8.1} us  (re-optimization + re-organization took {rebuild_secs:.2}s)"
    );

    let recovery = stale_us / fresh_us.max(1e-9);
    println!(
        "re-optimization recovered a {recovery:.1}x latency improvement on the shifted workload"
    );

    // Correctness is never affected by staleness, only performance.
    for q in night_workload.queries().iter().take(10) {
        assert_eq!(index.execute(q), reoptimized.execute(q));
    }
    println!("stale and fresh indexes agree on all checked query results");
}
